package node

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"instantad/internal/ads"
	"instantad/internal/core"
	"instantad/internal/fm"
	"instantad/internal/geo"
	"instantad/internal/node/discovery"
	"instantad/internal/obs"
	"instantad/internal/rng"
)

// PositionFunc reports the node's current position and velocity (a GPS in
// the paper's deployment).
type PositionFunc func(now time.Time) (geo.Point, geo.Vec)

// StaticPosition returns a PositionFunc pinned at p.
func StaticPosition(p geo.Point) PositionFunc {
	return func(time.Time) (geo.Point, geo.Vec) { return p, geo.Vec{} }
}

// Config parameterizes a live node.
type Config struct {
	// ID is the node's stable identity (the "MAC address" of ad IDs).
	ID uint32
	// ListenAddr is the address to bind, e.g. "127.0.0.1:0" (UDP) or
	// "mem:" (memnet auto-assign).
	ListenAddr string
	// Transport binds the socket and canonicalizes addresses; nil means
	// real UDP. The in-memory switchboard (internal/node/memnet) satisfies
	// the interface for many-node single-process tests.
	Transport Transport
	// Peers are static datagram destinations standing in for the broadcast
	// medium. With discovery enabled they are merely the initial peer set;
	// prefer Seeds there.
	Peers []string
	// Range is the virtual transmission range in meters; incoming packets
	// from senders farther than Range (per their advertised position) are
	// dropped. Zero disables the check (pure overlay mode).
	Range float64
	// Position provides the node's own kinematics; required.
	Position PositionFunc
	// Alpha and Beta are the paper's tuning parameters.
	Alpha, Beta float64
	// RoundTime is the gossip round Δt.
	RoundTime time.Duration
	// CacheK is the Store & Forward capacity.
	CacheK int
	// DIS, when positive, enables Optimization Mechanism (1) with that
	// annulus width.
	DIS float64
	// Opt2 enables the overhearing postponement (Mechanism 2).
	Opt2 bool
	// Seed drives the node's forwarding coin flips.
	Seed uint64
	// Popularity enables FM-sketch interest ranking (Section III.E); the
	// node's user ID for sketch hashing derives from ID.
	Popularity core.PopularityConfig
	// Interests are the node's interest keywords for ad matching.
	Interests []string

	// BeaconInterval, when positive, enables neighbor discovery: the node
	// periodically announces itself with a HELLO beacon and maintains a
	// TTL-expiring neighbor table that drives the peer set automatically.
	// Zero keeps the legacy static-peer mode.
	BeaconInterval time.Duration
	// NeighborTTL is how long a neighbor survives without being heard
	// before it is swept from the table (and the peer set). Zero means
	// 3 × BeaconInterval; when set it must exceed BeaconInterval.
	NeighborTTL time.Duration
	// Seeds are bootstrap contacts: beacons go to them only while the
	// neighbor table is empty (cold start and isolation recovery). A seed
	// may be a node address or, on a LAN, a subnet broadcast address.
	Seeds []string
	// AdvertiseAddr is the address put into outgoing beacons for others to
	// reach us at; empty means the bound socket address. Set it when
	// binding a wildcard address or behind a NAT.
	AdvertiseAddr string

	// BatchSoftCap is the target maximum size in bytes of an outgoing
	// multi-ad batch frame. Zero means the MTU-aware default (1400 bytes —
	// under a typical Ethernet path MTU, far below the 65507-byte hard
	// limit); a negative value disables batching entirely and reverts to
	// one legacy envelope per ad per peer. A single ad larger than the cap
	// is still shipped (alone) — datagrams cannot be fragmented here — and
	// counted in batch_oversize.
	BatchSoftCap int
	// DigestEvery, when positive, enables digest anti-entropy: every
	// DigestEvery gossip rounds the node sends its live cached ad-ID list
	// to its peers; receivers pull only the IDs they are missing, so
	// converged neighborhoods trade 8-byte IDs instead of full payloads.
	// Zero disables digests.
	DigestEvery int
	// BlockWindow is the BuddyCast-style serve block: after answering a
	// peer's pull, that peer's further pulls are dropped and our digests
	// skip it for this long, so one hungry neighbor cannot monopolize the
	// serve path. Zero means 4 × RoundTime when digests are enabled.
	BlockWindow time.Duration
	// RoundBytes, when positive, is the per-round byte budget for gossip
	// batches, digests and pull serves combined; sends beyond it are
	// deferred to the next round (counted in budget_deferred), so a hot
	// neighborhood degrades by slowing down instead of melting down. Zero
	// means unlimited.
	RoundBytes int

	// PeerFailLimit is the number of consecutive send failures after which
	// a peer enters timed backoff, so one dead address cannot burn a
	// syscall every gossip round. Zero means the default (3).
	PeerFailLimit int
	// PeerBackoffBase and PeerBackoffMax bound the exponential per-peer
	// backoff window: the first backoff lasts PeerBackoffBase and doubles
	// on each subsequent trip up to PeerBackoffMax. Zero means the
	// defaults (500ms and 30s).
	PeerBackoffBase, PeerBackoffMax time.Duration

	// Registry receives the node's instruments (node_* and, with discovery
	// enabled, discovery_*). Nil means the node creates a private registry,
	// reachable via Node.Registry. Registries are per-node: sharing one
	// between nodes would merge their counters.
	Registry *obs.Registry
	// Events, when non-nil, receives the node's lifecycle trace (peer
	// membership, discovery outcomes, backoff transitions) as JSONL.
	Events *EventRecorder
	// Logf, when non-nil, receives debug lines.
	Logf func(format string, args ...any)
}

func (c Config) validate() error {
	if c.ListenAddr == "" {
		return fmt.Errorf("node: empty listen address")
	}
	if c.Position == nil {
		return fmt.Errorf("node: nil position provider")
	}
	params := core.ProbParams{Alpha: c.Alpha, Beta: c.Beta}
	if err := params.Validate(); err != nil {
		return err
	}
	if c.RoundTime <= 0 {
		return fmt.Errorf("node: non-positive round time %v", c.RoundTime)
	}
	if c.CacheK < 1 {
		return fmt.Errorf("node: cache capacity %d < 1", c.CacheK)
	}
	if c.Range < 0 || c.DIS < 0 {
		return fmt.Errorf("node: negative range or DIS")
	}
	if c.BeaconInterval < 0 || c.NeighborTTL < 0 {
		return fmt.Errorf("node: negative beacon interval or neighbor TTL")
	}
	if c.BeaconInterval == 0 {
		if c.NeighborTTL > 0 {
			return fmt.Errorf("node: neighbor TTL without a beacon interval")
		}
		if len(c.Seeds) > 0 {
			return fmt.Errorf("node: seeds require a beacon interval")
		}
	} else if c.NeighborTTL > 0 && c.NeighborTTL <= c.BeaconInterval {
		return fmt.Errorf("node: neighbor TTL %v must exceed the beacon interval %v",
			c.NeighborTTL, c.BeaconInterval)
	}
	if len(c.AdvertiseAddr) > discovery.MaxAddrLen {
		return fmt.Errorf("node: advertise address longer than %d bytes", discovery.MaxAddrLen)
	}
	if c.BatchSoftCap > 0 && (c.BatchSoftCap < minBatchSoftCap || c.BatchSoftCap > maxPayload) {
		return fmt.Errorf("node: batch soft cap %d outside [%d, %d]", c.BatchSoftCap, minBatchSoftCap, maxPayload)
	}
	if c.DigestEvery < 0 {
		return fmt.Errorf("node: negative digest interval %d", c.DigestEvery)
	}
	if c.BlockWindow < 0 {
		return fmt.Errorf("node: negative block window %v", c.BlockWindow)
	}
	if c.RoundBytes < 0 {
		return fmt.Errorf("node: negative round byte budget %d", c.RoundBytes)
	}
	if c.PeerFailLimit < 0 {
		return fmt.Errorf("node: negative peer fail limit %d", c.PeerFailLimit)
	}
	if c.PeerBackoffBase < 0 || c.PeerBackoffMax < 0 {
		return fmt.Errorf("node: negative peer backoff")
	}
	return nil
}

// peerState is one datagram destination plus its send-health bookkeeping.
// All fields are guarded by Node.mu.
type peerState struct {
	key string // canonical addr string: the identity, the wire destination

	sent         uint64 // datagrams delivered to the socket (ads + beacons)
	failures     uint64 // total send failures
	consecFails  int    // failures since the last success
	backoffUntil time.Time
	nextBackoff  time.Duration
	inBackoff    bool // tripped and not yet succeeded again (event edge)
	detached     bool // removed from the peer set; in-flight sends must not
	// mutate its health or trip backoff — the entry is dead, only snapshots
	// taken before the removal still hold it.
}

// PeerHealth is a point-in-time snapshot of one peer's send health.
type PeerHealth struct {
	Addr        string `json:"addr"`
	Sent        uint64 `json:"sent"`
	Failures    uint64 `json:"failures"`
	ConsecFails int    `json:"consec_fails"`
	InBackoff   bool   `json:"in_backoff"`
}

// Node is one live protocol participant.
type Node struct {
	cfg       Config
	params    core.ProbParams
	transport Transport
	conn      PacketConn

	// Discovery state: nil table means the legacy static-peer mode.
	table       *discovery.Table
	neighborTTL time.Duration
	advertise   string   // the address our beacons claim
	seeds       []string // canonical bootstrap contacts

	failLimit   int
	backoffBase time.Duration
	backoffMax  time.Duration

	// Wire-layer tuning, resolved from Config at construction.
	batchCap    int           // soft cap in bytes; 0 = batching disabled
	digestEvery int           // digest rounds; 0 = digests disabled
	blockWindow time.Duration // per-peer serve block
	roundBytes  int           // per-round byte budget; 0 = unlimited

	// readBackoffMin/Max bound the delay applied after transient socket
	// read errors (overridden by tests for speed).
	readBackoffMin time.Duration
	readBackoffMax time.Duration

	mu        sync.Mutex
	cache     *ads.Cache
	seen      map[ads.ID]float64 // ad ID → protocol-time expiry of that ad
	nextPrune float64            // protocol time of the next seen-set sweep
	peers     []*peerState
	peerIndex map[string]*peerState // canonical key → entry of peers
	interests map[string]bool
	rnd       *rng.Stream
	nextSeq   uint32
	epoch     time.Time // protocol time zero: ages are seconds since epoch

	// Wire-layer round state, guarded by mu.
	nextDigest  float64              // protocol time of the next digest send
	budgetUsed  int                  // payload bytes spent this round window
	budgetReset float64              // protocol time the budget window rolls
	served      map[string]time.Time // addr → end of its serve block window

	reg         *obs.Registry
	events      *EventRecorder
	sendLatency *obs.Histogram
	recvLatency *obs.Histogram
	backoffDur  *obs.Histogram
	batchAds    *obs.Histogram // ads per sent batch frame
	batchBytes  *obs.Histogram // bytes per sent batch frame
	recvBatch   *obs.Histogram // ads per received batch frame
	digestIDs   *obs.Histogram // IDs per sent digest

	ctr       counters
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error
	wg        sync.WaitGroup
	started   bool
}

// counters hold the node's activity counts as registry-backed instruments —
// the same lock-free atomics as before the obs refactor, but now they also
// expose through /metrics and snapshots. Stats reads them back, so the
// Stats surface is exactly the registry's view.
type counters struct {
	sent             *obs.Counter
	broadcasts       *obs.Counter
	received         *obs.Counter
	outOfRange       *obs.Counter
	malformed        *obs.Counter
	duplicates       *obs.Counter
	expired          *obs.Counter
	readErrors       *obs.Counter
	sendErrors       *obs.Counter
	seenPruned       *obs.Counter
	peerBackoffs     *obs.Counter
	beaconsSent      *obs.Counter
	beaconsRecv      *obs.Counter
	beaconRelays     *obs.Counter
	neighborsExpired *obs.Counter
	epochSkew        *obs.Counter
	batchesSent      *obs.Counter
	batchesRecv      *obs.Counter
	batchOversize    *obs.Counter
	digestsSent      *obs.Counter
	digestsRecv      *obs.Counter
	digestHits       *obs.Counter
	pullsSent        *obs.Counter
	pullsRecv        *obs.Counter
	pulledAds        *obs.Counter
	blockedServes    *obs.Counter
	budgetDeferred   *obs.Counter
}

// newCounters registers every node_* counter in reg.
func newCounters(reg *obs.Registry) counters {
	return counters{
		sent:             reg.Counter("node_sent_total", "ad datagrams transmitted (per peer destination)"),
		broadcasts:       reg.Counter("node_broadcasts_total", "gossip decisions that fired (one per ad broadcast)"),
		received:         reg.Counter("node_received_total", "envelopes accepted"),
		outOfRange:       reg.Counter("node_out_of_range_total", "frames dropped by the virtual radio"),
		malformed:        reg.Counter("node_malformed_total", "undecodable datagrams"),
		duplicates:       reg.Counter("node_duplicates_total", "envelopes for ads already cached"),
		expired:          reg.Counter("node_expired_total", "envelopes dropped because the ad had expired"),
		readErrors:       reg.Counter("node_read_errors_total", "transient socket read failures survived via backoff"),
		sendErrors:       reg.Counter("node_send_errors_total", "failed datagram transmissions"),
		seenPruned:       reg.Counter("node_seen_pruned_total", "expired IDs swept from the dedup set"),
		peerBackoffs:     reg.Counter("node_peer_backoffs_total", "times a peer entered timed backoff"),
		beaconsSent:      reg.Counter("node_beacons_sent_total", "HELLO datagrams transmitted"),
		beaconsRecv:      reg.Counter("node_beacons_recv_total", "HELLO datagrams accepted"),
		beaconRelays:     reg.Counter("node_beacon_relays_total", "first-hand introductions passed along"),
		neighborsExpired: reg.Counter("node_neighbors_expired_total", "neighbors aged out by the TTL sweep"),
		epochSkew:        reg.Counter("node_epoch_skew_total", "beacons whose epoch hint disagreed with ours"),
		batchesSent:      reg.Counter("node_batches_sent_total", "multi-ad batch frames transmitted (per peer destination)"),
		batchesRecv:      reg.Counter("node_batches_recv_total", "multi-ad batch frames accepted"),
		batchOversize:    reg.Counter("node_batch_oversize_total", "single ads larger than the batch soft cap, shipped alone"),
		digestsSent:      reg.Counter("node_digests_sent_total", "cache-digest frames transmitted (per peer destination)"),
		digestsRecv:      reg.Counter("node_digests_recv_total", "cache-digest frames accepted"),
		digestHits:       reg.Counter("node_digest_hits_total", "digests already fully covered by our cache (no pull needed)"),
		pullsSent:        reg.Counter("node_pulls_sent_total", "pull requests transmitted for missing ad IDs"),
		pullsRecv:        reg.Counter("node_pulls_recv_total", "pull requests accepted and served"),
		pulledAds:        reg.Counter("node_pulled_ads_total", "ads served in response to pull requests"),
		blockedServes:    reg.Counter("node_blocked_serves_total", "pulls or digests skipped inside a peer's serve block window"),
		budgetDeferred:   reg.Counter("node_budget_deferred_total", "sends deferred because the per-round byte budget ran out"),
	}
}

// Stats is a snapshot of a live node's activity.
type Stats struct {
	Sent             uint64 `json:"sent"`              // ad datagrams transmitted (per peer destination)
	Broadcasts       uint64 `json:"broadcasts"`        // gossip decisions that fired (one per ad broadcast)
	Received         uint64 `json:"received"`          // envelopes accepted
	OutOfRange       uint64 `json:"out_of_range"`      // frames dropped by the virtual radio
	Malformed        uint64 `json:"malformed"`         // undecodable datagrams
	Duplicates       uint64 `json:"duplicates"`        // envelopes for ads already cached
	Expired          uint64 `json:"expired"`           // envelopes dropped because the ad had expired
	ReadErrors       uint64 `json:"read_errors"`       // transient socket read failures survived via backoff
	SendErrors       uint64 `json:"send_errors"`       // failed datagram transmissions
	SeenPruned       uint64 `json:"seen_pruned"`       // expired IDs swept from the dedup set
	PeerBackoffs     uint64 `json:"peer_backoffs"`     // times a peer entered timed backoff
	BeaconsSent      uint64 `json:"beacons_sent"`      // HELLO datagrams transmitted
	BeaconsRecv      uint64 `json:"beacons_recv"`      // HELLO datagrams accepted
	BeaconRelays     uint64 `json:"beacon_relays"`     // first-hand introductions passed along
	NeighborsExpired uint64 `json:"neighbors_expired"` // neighbors aged out by the TTL sweep
	EpochSkew        uint64 `json:"epoch_skew"`        // beacons whose epoch hint disagreed with ours
	BatchesSent      uint64 `json:"batches_sent"`      // multi-ad batch frames transmitted (per peer destination)
	BatchesRecv      uint64 `json:"batches_recv"`      // multi-ad batch frames accepted
	BatchOversize    uint64 `json:"batch_oversize"`    // single ads larger than the soft cap, shipped alone
	DigestsSent      uint64 `json:"digests_sent"`      // cache-digest frames transmitted (per peer destination)
	DigestsRecv      uint64 `json:"digests_recv"`      // cache-digest frames accepted
	DigestHits       uint64 `json:"digest_hits"`       // digests fully covered by our cache (no pull needed)
	PullsSent        uint64 `json:"pulls_sent"`        // pull requests transmitted for missing ad IDs
	PullsRecv        uint64 `json:"pulls_recv"`        // pull requests accepted and served
	PulledAds        uint64 `json:"pulled_ads"`        // ads served in response to pull requests
	BlockedServes    uint64 `json:"blocked_serves"`    // pulls/digests skipped inside a serve block window
	BudgetDeferred   uint64 `json:"budget_deferred"`   // sends deferred by the per-round byte budget
	SeenLive         uint64 `json:"seen_live"`         // gauge: current dedup-set size (O(live ads))
	PeersLive        uint64 `json:"peers_live"`        // gauge: peers currently not in backoff
	NeighborsLive    uint64 `json:"neighbors_live"`    // gauge: current neighbor-table size
}

// Add accumulates s into t field by field (gauges included), so multi-node
// owners — clusters, fleets — aggregate one way.
func (t *Stats) Add(s Stats) {
	t.Sent += s.Sent
	t.Broadcasts += s.Broadcasts
	t.Received += s.Received
	t.OutOfRange += s.OutOfRange
	t.Malformed += s.Malformed
	t.Duplicates += s.Duplicates
	t.Expired += s.Expired
	t.ReadErrors += s.ReadErrors
	t.SendErrors += s.SendErrors
	t.SeenPruned += s.SeenPruned
	t.PeerBackoffs += s.PeerBackoffs
	t.BeaconsSent += s.BeaconsSent
	t.BeaconsRecv += s.BeaconsRecv
	t.BeaconRelays += s.BeaconRelays
	t.NeighborsExpired += s.NeighborsExpired
	t.EpochSkew += s.EpochSkew
	t.BatchesSent += s.BatchesSent
	t.BatchesRecv += s.BatchesRecv
	t.BatchOversize += s.BatchOversize
	t.DigestsSent += s.DigestsSent
	t.DigestsRecv += s.DigestsRecv
	t.DigestHits += s.DigestHits
	t.PullsSent += s.PullsSent
	t.PullsRecv += s.PullsRecv
	t.PulledAds += s.PulledAds
	t.BlockedServes += s.BlockedServes
	t.BudgetDeferred += s.BudgetDeferred
	t.SeenLive += s.SeenLive
	t.PeersLive += s.PeersLive
	t.NeighborsLive += s.NeighborsLive
}

const (
	defaultPeerFailLimit   = 3
	defaultPeerBackoffBase = 500 * time.Millisecond
	defaultPeerBackoffMax  = 30 * time.Second
	defaultReadBackoffMin  = 5 * time.Millisecond
	defaultReadBackoffMax  = time.Second
	// defaultTTLIntervals is the neighbor TTL in beacon intervals when
	// Config.NeighborTTL is zero: three missed beacons mean gone.
	defaultTTLIntervals = 3
	// epochSkewSlack is how far a beacon's epoch hint may sit from ours
	// before it is counted as a misconfiguration (seconds).
	epochSkewSlack = 1.0
)

// New binds the node's socket. Call Start to begin gossiping and Close to
// shut down.
func New(cfg Config) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	tr := cfg.Transport
	if tr == nil {
		tr = UDPTransport{}
	}
	conn, err := tr.Listen(cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	n := &Node{
		cfg:            cfg,
		params:         core.ProbParams{Alpha: cfg.Alpha, Beta: cfg.Beta},
		transport:      tr,
		conn:           conn,
		reg:            reg,
		events:         cfg.Events,
		ctr:            newCounters(reg),
		failLimit:      cfg.PeerFailLimit,
		backoffBase:    cfg.PeerBackoffBase,
		backoffMax:     cfg.PeerBackoffMax,
		readBackoffMin: defaultReadBackoffMin,
		readBackoffMax: defaultReadBackoffMax,
		cache:          ads.NewCache(cfg.CacheK),
		seen:           make(map[ads.ID]float64),
		served:         make(map[string]time.Time),
		peerIndex:      make(map[string]*peerState),
		interests:      make(map[string]bool, len(cfg.Interests)),
		rnd:            rng.New(cfg.Seed),
		epoch:          time.Now(),
		done:           make(chan struct{}),
	}
	if n.failLimit == 0 {
		n.failLimit = defaultPeerFailLimit
	}
	if n.backoffBase == 0 {
		n.backoffBase = defaultPeerBackoffBase
	}
	if n.backoffMax == 0 {
		n.backoffMax = defaultPeerBackoffMax
	}
	if n.backoffMax < n.backoffBase {
		n.backoffMax = n.backoffBase
	}
	// Resolve the wire-layer tuning: zero soft cap means the MTU-aware
	// default, negative disables batching (one legacy envelope per ad).
	switch {
	case cfg.BatchSoftCap < 0:
		n.batchCap = 0
	case cfg.BatchSoftCap == 0:
		n.batchCap = defaultBatchSoftCap
	default:
		n.batchCap = cfg.BatchSoftCap
	}
	n.digestEvery = cfg.DigestEvery
	n.blockWindow = cfg.BlockWindow
	if n.blockWindow == 0 && n.digestEvery > 0 {
		n.blockWindow = 4 * cfg.RoundTime
	}
	n.roundBytes = cfg.RoundBytes
	if n.digestEvery > 0 {
		// The first digest waits a full interval so cold caches settle.
		n.nextDigest = float64(n.digestEvery) * cfg.RoundTime.Seconds()
	}
	for _, k := range cfg.Interests {
		n.interests[k] = true
	}
	if cfg.BeaconInterval > 0 {
		n.neighborTTL = cfg.NeighborTTL
		if n.neighborTTL == 0 {
			n.neighborTTL = defaultTTLIntervals * cfg.BeaconInterval
		}
		n.table = discovery.NewTable(n.neighborTTL)
		n.advertise = cfg.AdvertiseAddr
		if n.advertise == "" {
			n.advertise = conn.LocalAddr()
		}
		for _, s := range cfg.Seeds {
			key, err := tr.Resolve(s)
			if err != nil {
				conn.Close()
				return nil, fmt.Errorf("node: seed %q: %w", s, err)
			}
			n.seeds = append(n.seeds, key)
		}
	}
	for _, p := range cfg.Peers {
		key, err := tr.Resolve(p)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("node: peer %q: %w", p, err)
		}
		n.addPeerLocked(key)
	}
	n.sendLatency = reg.Histogram("node_send_latency_seconds",
		"time one datagram transmission spent in the socket write",
		obs.ExpBuckets(1e-6, 4, 12))
	n.recvLatency = reg.Histogram("node_receive_latency_seconds",
		"time from datagram arrival to full protocol integration",
		obs.ExpBuckets(1e-6, 4, 12))
	n.backoffDur = reg.Histogram("node_peer_backoff_seconds",
		"duration of each peer backoff window entered",
		obs.ExpBuckets(0.05, 2, 12))
	n.batchAds = reg.Histogram("node_batch_ads",
		"ads packed into each transmitted batch frame",
		obs.ExpBuckets(1, 2, 10))
	n.batchBytes = reg.Histogram("node_batch_bytes",
		"payload bytes of each transmitted batch frame",
		obs.ExpBuckets(64, 2, 11))
	n.recvBatch = reg.Histogram("node_recv_batch_ads",
		"ads carried by each accepted batch frame",
		obs.ExpBuckets(1, 2, 10))
	n.digestIDs = reg.Histogram("node_digest_ids",
		"ad IDs carried by each transmitted digest frame",
		obs.ExpBuckets(1, 2, 12))
	reg.GaugeFunc("node_seen_live", "current dedup-set size",
		func() float64 { return float64(n.SeenSize()) })
	reg.GaugeFunc("node_peers_live", "peers currently not in backoff",
		func() float64 { return float64(n.peersLive()) })
	reg.GaugeFunc("node_neighbors_live", "current neighbor-table size",
		func() float64 { return float64(n.NeighborCount()) })
	if n.table != nil {
		n.table.InstrumentWith(reg)
	}
	return n, nil
}

// Registry returns the node's instrument registry — the Config.Registry it
// was given, or the private one it built.
func (n *Node) Registry() *obs.Registry { return n.reg }

// peersLive counts peers currently outside a backoff window (the
// node_peers_live gauge and Stats.PeersLive).
func (n *Node) peersLive() int {
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	live := 0
	for _, p := range n.peers {
		if !p.backoffUntil.After(now) {
			live++
		}
	}
	return live
}

// event emits one lifecycle event when an EventRecorder is configured. Safe
// to call with n.mu held: the recorder's lock nests strictly inside.
func (n *Node) event(kind, peer string, id uint32, detail string) {
	if n.events == nil {
		return
	}
	n.events.Record(NodeEvent{Kind: kind, Peer: peer, ID: id, Detail: detail})
}

// Addr returns the bound listen address (useful with port 0).
func (n *Node) Addr() string { return n.conn.LocalAddr() }

// AddPeer adds a datagram destination at runtime. Peers are identified by
// their canonical resolved address: re-adding an existing peer (under any
// equivalent spelling) is a no-op that preserves its send-health state.
func (n *Node) AddPeer(addr string) error {
	key, err := n.transport.Resolve(addr)
	if err != nil {
		return fmt.Errorf("node: peer %q: %w", addr, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addPeerLocked(key)
	return nil
}

// addPeerLocked inserts a peer by canonical key, deduplicating: an existing
// entry is returned untouched so a re-add cannot double-send datagrams or
// reset accumulated health. Callers hold n.mu (or own the node exclusively,
// as New does).
func (n *Node) addPeerLocked(key string) *peerState {
	if p := n.peerIndex[key]; p != nil {
		return p
	}
	p := &peerState{key: key}
	n.peers = append(n.peers, p)
	n.peerIndex[key] = p
	n.event("peer_add", key, 0, "")
	return p
}

// RemovePeer drops a datagram destination at runtime, reporting whether a
// matching peer existed. The address is matched by its resolved canonical
// form, so "localhost:7001" removes a peer added as "127.0.0.1:7001".
func (n *Node) RemovePeer(addr string) bool {
	key := addr
	if k, err := n.transport.Resolve(addr); err == nil {
		key = k
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	p := n.peerIndex[key]
	if p == nil {
		return false
	}
	// Mark the entry detached under the same lock that removes it: send
	// paths holding a pre-removal snapshot must stop mutating its health.
	p.detached = true
	delete(n.peerIndex, key)
	kept := n.peers[:0]
	for _, q := range n.peers {
		if q.key != key {
			kept = append(kept, q)
		}
	}
	n.peers = kept
	n.event("peer_remove", key, 0, "")
	return true
}

// Peers returns a snapshot of every peer's send health.
func (n *Node) Peers() []PeerHealth {
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]PeerHealth, 0, len(n.peers))
	for _, p := range n.peers {
		out = append(out, PeerHealth{
			Addr:        p.key,
			Sent:        p.sent,
			Failures:    p.failures,
			ConsecFails: p.consecFails,
			InBackoff:   p.backoffUntil.After(now),
		})
	}
	return out
}

// Neighbors returns a snapshot of the discovery neighbor table, sorted by
// node ID. It is nil when discovery is disabled.
func (n *Node) Neighbors() []discovery.Neighbor {
	if n.table == nil {
		return nil
	}
	return n.table.Snapshot()
}

// NeighborCount returns the current neighbor-table size (0 when discovery
// is disabled).
func (n *Node) NeighborCount() int {
	if n.table == nil {
		return 0
	}
	return n.table.Len()
}

// Start launches the receive loop, the gossip scheduler, and (with
// discovery enabled) the beacon announcer.
func (n *Node) Start() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		panic("node: Start called twice")
	}
	n.started = true
	n.mu.Unlock()
	n.wg.Add(2)
	go n.readLoop()
	go n.gossipLoop()
	if n.table != nil {
		n.wg.Add(1)
		go n.beaconLoop()
	}
}

// Close stops the node and releases the socket. It is idempotent and safe to
// call from any number of goroutines concurrently; every call returns the
// same result.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		close(n.done)
		n.closeErr = n.conn.Close()
		n.wg.Wait()
	})
	return n.closeErr
}

// closed reports whether shutdown has begun.
func (n *Node) closed() bool {
	select {
	case <-n.done:
		return true
	default:
		return false
	}
}

// now returns the protocol clock: seconds since the node's epoch. Ads issued
// by any node in the same deployment must share an epoch convention; for
// loopback clusters, construct all nodes at roughly the same time or issue
// with explicit ages.
func (n *Node) now() float64 { return time.Since(n.epoch).Seconds() }

// SetEpoch aligns the node's protocol clock with a shared zero point. Call
// before Start on every node of a cluster.
func (n *Node) SetEpoch(t time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.epoch = t
}

// epochUnix returns the epoch as Unix seconds — the beacon's epoch hint.
func (n *Node) epochUnix() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return float64(n.epoch.UnixNano()) / 1e9
}

// Issue injects a new advertisement at the node's current position and
// broadcasts it once.
func (n *Node) Issue(spec core.AdSpec) (*ads.Advertisement, error) {
	pos, _ := n.cfg.Position(time.Now())
	n.mu.Lock()
	// A hostile or buggy peer may have flooded forged ads under our issuer
	// identity; skip any sequence number already occupied so the cache
	// insert below cannot collide (and panic).
	for n.cache.Get(ads.ID{Issuer: n.cfg.ID, Seq: n.nextSeq}) != nil {
		n.nextSeq++
	}
	ad := &ads.Advertisement{
		ID:       ads.ID{Issuer: n.cfg.ID, Seq: n.nextSeq},
		Origin:   pos,
		IssuedAt: n.now(),
		R:        spec.R,
		D:        spec.D,
		Category: spec.Category,
		Keywords: spec.Keywords,
		Text:     spec.Text,
	}
	n.nextSeq++
	if err := ad.Validate(); err != nil {
		n.mu.Unlock()
		return nil, err
	}
	if n.cfg.Popularity.Enabled {
		pc := n.cfg.Popularity
		if pc.F == 0 {
			pc.F = 8
		}
		if pc.L == 0 {
			pc.L = 32
		}
		ad.Sketch = fm.New(pc.F, pc.L, pc.SketchSeed)
	}
	n.markSeenLocked(ad)
	own := ad.Clone()
	n.applyPopularityLocked(own)
	e, overflow := n.cache.Insert(own, n.forwardProbLocked(own, pos))
	e.ScheduledAt = n.now() + n.cfg.RoundTime.Seconds()
	if overflow {
		n.evictLocked()
	}
	// Clone before releasing the lock: the cached entry (own) may be
	// mutated by handle merging duplicates the moment mu drops, and
	// broadcast reads the ad outside the lock. fireDue clones for the same
	// reason.
	wire := own.Clone()
	n.mu.Unlock()
	n.broadcast(wire)
	return ad, nil
}

// markSeenLocked records the ad in the dedup set, keyed to the ad's expiry
// on the protocol clock so the sweep in pruneSeenLocked can bound the set by
// the live-ad population. Duplicates may carry an enlarged D; keep the
// latest expiry. Callers hold n.mu.
func (n *Node) markSeenLocked(ad *ads.Advertisement) {
	exp := ad.IssuedAt + ad.D
	if old, ok := n.seen[ad.ID]; !ok || exp > old {
		n.seen[ad.ID] = exp
	}
}

// pruneSeenLocked sweeps expired IDs out of the dedup set at most once per
// gossip round, keeping it O(live ads) instead of O(all ads ever heard).
// An ID is swept the first sweep after its expiry — straggler duplicates of
// a just-expired ad are dropped by the expiry check either way, so keeping
// them a grace round (as an earlier revision did) only misreported them as
// live. Callers hold n.mu.
func (n *Node) pruneSeenLocked(now float64) {
	if now < n.nextPrune {
		return
	}
	n.nextPrune = now + n.cfg.RoundTime.Seconds()
	for id, exp := range n.seen {
		if exp < now {
			delete(n.seen, id)
			n.ctr.seenPruned.Add(1)
		}
	}
}

// Has reports whether the node has heard the given ad and the ad is still
// live on the protocol clock. The stored expiry is consulted directly: an
// expired ad reports false even before the next sweep removes its ID.
func (n *Node) Has(id ads.ID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	exp, ok := n.seen[id]
	return ok && n.now() <= exp
}

// SeenSize returns the current size of the dedup set (the SeenLive gauge).
func (n *Node) SeenSize() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.seen)
}

// Cached returns copies of the currently cached ads.
func (n *Node) Cached() []*ads.Advertisement {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*ads.Advertisement, 0, n.cache.Len())
	for _, e := range n.cache.Entries() {
		out = append(out, e.Ad.Clone())
	}
	return out
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	s := Stats{
		Sent:             n.ctr.sent.Value(),
		Broadcasts:       n.ctr.broadcasts.Value(),
		Received:         n.ctr.received.Value(),
		OutOfRange:       n.ctr.outOfRange.Value(),
		Malformed:        n.ctr.malformed.Value(),
		Duplicates:       n.ctr.duplicates.Value(),
		Expired:          n.ctr.expired.Value(),
		ReadErrors:       n.ctr.readErrors.Value(),
		SendErrors:       n.ctr.sendErrors.Value(),
		SeenPruned:       n.ctr.seenPruned.Value(),
		PeerBackoffs:     n.ctr.peerBackoffs.Value(),
		BeaconsSent:      n.ctr.beaconsSent.Value(),
		BeaconsRecv:      n.ctr.beaconsRecv.Value(),
		BeaconRelays:     n.ctr.beaconRelays.Value(),
		NeighborsExpired: n.ctr.neighborsExpired.Value(),
		EpochSkew:        n.ctr.epochSkew.Value(),
		BatchesSent:      n.ctr.batchesSent.Value(),
		BatchesRecv:      n.ctr.batchesRecv.Value(),
		BatchOversize:    n.ctr.batchOversize.Value(),
		DigestsSent:      n.ctr.digestsSent.Value(),
		DigestsRecv:      n.ctr.digestsRecv.Value(),
		DigestHits:       n.ctr.digestHits.Value(),
		PullsSent:        n.ctr.pullsSent.Value(),
		PullsRecv:        n.ctr.pullsRecv.Value(),
		PulledAds:        n.ctr.pulledAds.Value(),
		BlockedServes:    n.ctr.blockedServes.Value(),
		BudgetDeferred:   n.ctr.budgetDeferred.Value(),
	}
	if n.table != nil {
		s.NeighborsLive = uint64(n.table.Len())
	}
	now := time.Now()
	n.mu.Lock()
	s.SeenLive = uint64(len(n.seen))
	for _, p := range n.peers {
		if !p.backoffUntil.After(now) {
			s.PeersLive++
		}
	}
	n.mu.Unlock()
	return s
}

// forwardProbLocked evaluates the configured probability function. Callers
// hold n.mu.
func (n *Node) forwardProbLocked(ad *ads.Advertisement, pos geo.Point) float64 {
	d := pos.Dist(ad.Origin)
	age := ad.Age(n.now())
	if n.cfg.DIS > 0 {
		return core.ForwardProbOpt1(n.params, d, ad.R, ad.D, age, n.cfg.DIS)
	}
	return core.ForwardProb(n.params, d, ad.R, ad.D, age)
}

// evictLocked refreshes probabilities and drops the lowest entry.
func (n *Node) evictLocked() {
	pos, _ := n.cfg.Position(time.Now())
	for _, e := range n.cache.Entries() {
		e.Prob = n.forwardProbLocked(e.Ad, pos)
	}
	n.cache.EvictLowest()
}

// readLoop receives, filters and integrates datagrams — ad envelopes and
// HELLO beacons share the socket and are dispatched on their leading magic
// byte. Read errors are classified: a closed socket ends the loop, anything
// else is treated as transient and retried under capped exponential backoff
// so a persistent socket fault cannot hot-spin a core or flood the log.
func (n *Node) readLoop() {
	defer n.wg.Done()
	buf := make([]byte, maxDatagram)
	var backoff time.Duration
	for {
		nb, from, err := n.conn.ReadFrom(buf)
		if err != nil {
			if n.closed() || errors.Is(err, net.ErrClosed) {
				return
			}
			n.ctr.readErrors.Add(1)
			if backoff == 0 {
				backoff = n.readBackoffMin
			} else {
				backoff *= 2
				if backoff > n.readBackoffMax {
					backoff = n.readBackoffMax
				}
			}
			n.logf("read error (retry in %v): %v", backoff, err)
			select {
			case <-n.done:
				return
			case <-time.After(backoff):
			}
			continue
		}
		backoff = 0
		data := buf[:nb]
		if nb == 0 {
			n.ctr.malformed.Add(1)
			continue
		}
		switch data[0] {
		case discovery.BeaconMagic:
			n.handleBeacon(data, from)
		case batchMagic:
			start := time.Now()
			n.handleBatch(data)
			n.recvLatency.Observe(time.Since(start).Seconds())
		case digestMagic:
			n.handleDigest(data, from)
		case pullMagic:
			n.handlePull(data, from)
		default:
			env, err := decodeEnvelope(data)
			if err != nil {
				n.ctr.malformed.Add(1)
				continue
			}
			start := time.Now()
			n.handle(env)
			n.recvLatency.Observe(time.Since(start).Seconds())
		}
	}
}

// handle applies the virtual radio and the paper's receive algorithm to one
// legacy single-ad envelope.
func (n *Node) handle(env *envelope) {
	pos, vel := n.cfg.Position(time.Now())
	if n.cfg.Range > 0 && pos.Dist(env.Pos) > n.cfg.Range {
		n.ctr.outOfRange.Add(1)
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.integrateAdLocked(env.Pos, pos, vel, env.Ad)
}

// handleBatch decodes a multi-ad batch frame, applies the virtual radio once
// for the whole frame (all ads share the sender's position), and integrates
// every carried ad under one lock acquisition.
func (n *Node) handleBatch(data []byte) {
	f, err := decodeBatch(data)
	if err != nil {
		n.ctr.malformed.Add(1)
		return
	}
	pos, vel := n.cfg.Position(time.Now())
	if n.cfg.Range > 0 && pos.Dist(f.Pos) > n.cfg.Range {
		n.ctr.outOfRange.Add(1)
		return
	}
	n.ctr.batchesRecv.Add(1)
	n.recvBatch.Observe(float64(len(f.Ads)))
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, ad := range f.Ads {
		n.integrateAdLocked(f.Pos, pos, vel, ad)
	}
}

// integrateAdLocked is the paper's receive algorithm for one ad heard from a
// sender at srcPos: expiry check, dedup-set mark, duplicate merge (R/D/
// sketch, Opt2 postponement), or cache admission. Callers hold n.mu and have
// already applied the virtual radio.
func (n *Node) integrateAdLocked(srcPos geo.Point, pos geo.Point, vel geo.Vec, ad *ads.Advertisement) {
	now := n.now()
	if ad.Expired(now) {
		n.ctr.expired.Add(1)
		return
	}
	n.ctr.received.Add(1)
	n.markSeenLocked(ad)
	if e := n.cache.Get(ad.ID); e != nil {
		n.ctr.duplicates.Add(1)
		if ad.R > e.Ad.R {
			e.Ad.R = ad.R
		}
		if ad.D > e.Ad.D {
			e.Ad.D = ad.D
			n.markSeenLocked(e.Ad)
		}
		if e.Ad.Sketch != nil && ad.Sketch != nil {
			_ = e.Ad.Sketch.Merge(ad.Sketch)
		}
		if n.cfg.Opt2 {
			// Formula 4 with the real overlap and approach angle.
			p := geo.OverlapFraction(n.cfg.Range, pos.Dist(srcPos))
			theta := geo.AngleBetween(vel, srcPos.Sub(pos))
			e.ScheduledAt += core.PostponeInterval(n.cfg.RoundTime.Seconds(), p, theta)
		}
		return
	}
	own := ad.Clone()
	n.applyPopularityLocked(own)
	e, overflow := n.cache.Insert(own, n.forwardProbLocked(own, pos))
	e.ScheduledAt = now + n.cfg.RoundTime.Seconds()
	if overflow {
		n.evictLocked()
	}
}

// handleDigest answers a neighbor's cache digest: any advertised ID we have
// not heard (or whose copy we heard has expired) goes into a pull request
// back to the sender. A digest we fully cover is a digest hit — the
// anti-entropy steady state where neighbors trade 8-byte IDs instead of
// payloads.
func (n *Node) handleDigest(data []byte, from string) {
	f, err := decodeIDFrame(data, digestMagic)
	if err != nil {
		n.ctr.malformed.Add(1)
		return
	}
	pos, _ := n.cfg.Position(time.Now())
	if n.cfg.Range > 0 && pos.Dist(f.Pos) > n.cfg.Range {
		n.ctr.outOfRange.Add(1)
		return
	}
	n.ctr.digestsRecv.Add(1)
	n.mu.Lock()
	now := n.now()
	var missing []ads.ID
	for _, id := range f.IDs {
		if exp, ok := n.seen[id]; ok && now <= exp {
			continue
		}
		missing = append(missing, id)
		if len(missing) == maxIDsPerFrame {
			break
		}
	}
	n.mu.Unlock()
	if len(missing) == 0 {
		n.ctr.digestHits.Add(1)
		return
	}
	pf := idFrame{Sender: n.cfg.ID, Pos: pos, IDs: missing}
	out, err := pf.encode(pullMagic)
	if err != nil {
		n.logf("pull encode: %v", err)
		return
	}
	if !n.takeBudget(len(out)) {
		n.ctr.budgetDeferred.Add(1)
		return
	}
	if n.sendToAddr(out, from) {
		n.ctr.pullsSent.Add(1)
	}
}

// handlePull serves a neighbor's pull request with the requested ads from
// our cache, packed into batch frames, then blocks that neighbor for the
// serve window (BuddyCast-style) so one hungry peer cannot monopolize us.
func (n *Node) handlePull(data []byte, from string) {
	f, err := decodeIDFrame(data, pullMagic)
	if err != nil {
		n.ctr.malformed.Add(1)
		return
	}
	pos, vel := n.cfg.Position(time.Now())
	if n.cfg.Range > 0 && pos.Dist(f.Pos) > n.cfg.Range {
		n.ctr.outOfRange.Add(1)
		return
	}
	now := time.Now()
	if n.servedBlocked(from, now) {
		n.ctr.blockedServes.Add(1)
		return
	}
	n.mu.Lock()
	var serve []*ads.Advertisement
	for _, id := range f.IDs {
		if e := n.cache.Get(id); e != nil {
			serve = append(serve, e.Ad.Clone())
		}
	}
	if len(serve) > 0 && n.blockWindow > 0 {
		n.served[from] = now.Add(n.blockWindow)
	}
	n.mu.Unlock()
	n.ctr.pullsRecv.Add(1)
	if len(serve) == 0 {
		return
	}
	softCap := n.batchCap
	if softCap == 0 {
		// Pull serves are always batched, even when round gossip is not.
		softCap = defaultBatchSoftCap
	}
	frames, oversize := packBatches(n.cfg.ID, pos, vel, serve, softCap)
	if oversize > 0 {
		n.ctr.batchOversize.Add(uint64(oversize))
	}
	for _, fr := range frames {
		if !n.takeBudget(len(fr.data)) {
			n.ctr.budgetDeferred.Add(1)
			continue
		}
		if n.sendToAddr(fr.data, from) {
			n.ctr.sent.Add(1)
			n.ctr.batchesSent.Add(1)
			n.ctr.pulledAds.Add(uint64(fr.ads))
			n.batchAds.Observe(float64(fr.ads))
			n.batchBytes.Observe(float64(len(fr.data)))
		}
	}
}

// servedBlocked reports whether addr sits inside its serve block window.
func (n *Node) servedBlocked(addr string, now time.Time) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	until, ok := n.served[addr]
	return ok && until.After(now)
}

// pruneServedLocked drops expired serve blocks, keeping the map bounded by
// the recently-served peer set. Callers hold n.mu.
func (n *Node) pruneServedLocked(now time.Time) {
	for addr, until := range n.served {
		if !until.After(now) {
			delete(n.served, addr)
		}
	}
}

// takeBudget claims nb bytes of the per-round send budget, rolling the
// window on the protocol clock. Unlimited (roundBytes == 0) always grants.
func (n *Node) takeBudget(nb int) bool {
	if n.roundBytes <= 0 {
		return true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.now()
	if now >= n.budgetReset {
		n.budgetUsed = 0
		n.budgetReset = now + n.cfg.RoundTime.Seconds()
	}
	if n.budgetUsed+nb > n.roundBytes {
		return false
	}
	n.budgetUsed += nb
	return true
}

// handleBeacon integrates one HELLO datagram: virtual radio first, then the
// neighbor table, then membership — a first-heard neighbor is added to the
// peer set, introduced to the rest of the neighborhood (when heard
// first-hand), and answered with our own beacon so the pairwise link forms
// in one exchange instead of one interval.
func (n *Node) handleBeacon(data []byte, from string) {
	b, err := discovery.DecodeBeacon(data)
	if err != nil {
		n.ctr.malformed.Add(1)
		return
	}
	if n.table == nil || b.ID == n.cfg.ID {
		// Discovery disabled, or our own beacon echoed back (a seed list
		// containing ourselves, a relayed introduction): drop quietly.
		return
	}
	pos, _ := n.cfg.Position(time.Now())
	if n.cfg.Range > 0 && pos.Dist(b.Pos) > n.cfg.Range {
		n.ctr.outOfRange.Add(1)
		return
	}
	key, err := n.transport.Resolve(b.Addr)
	if err != nil {
		// A beacon claiming an unroutable address is useless to us.
		n.ctr.malformed.Add(1)
		return
	}
	n.ctr.beaconsRecv.Add(1)
	if skew := b.Epoch - n.epochUnix(); skew > epochSkewSlack || skew < -epochSkewSlack {
		n.ctr.epochSkew.Add(1)
		n.logf("neighbor %d epoch differs from ours by %.1fs: ad ages will disagree", b.ID, skew)
	}
	b.Addr = key
	ev, prevAddr := n.table.Observe(b, time.Now())
	switch ev {
	case discovery.New:
		n.event("neighbor_new", key, b.ID, "")
		n.mu.Lock()
		n.addPeerLocked(key)
		n.mu.Unlock()
		n.logf("discovered neighbor %d at %s", b.ID, key)
		// Only first-hand beacons are relayed: an introduction of an
		// introduction would echo around the mesh forever.
		if from == key {
			n.relayIntroduction(data, key)
		}
		n.beaconBack(key)
	case discovery.AddrChanged:
		n.event("neighbor_addr_changed", key, b.ID, prevAddr)
		n.mu.Lock()
		if old := n.peerIndex[prevAddr]; old != nil {
			old.detached = true
			delete(n.peerIndex, prevAddr)
			kept := n.peers[:0]
			for _, p := range n.peers {
				if p.key != prevAddr {
					kept = append(kept, p)
				}
			}
			n.peers = kept
		}
		n.addPeerLocked(key)
		n.mu.Unlock()
		n.logf("neighbor %d moved %s → %s", b.ID, prevAddr, key)
	case discovery.Refreshed:
		n.event("neighbor_refreshed", key, b.ID, "")
	}
}

// relayIntroduction passes a first-heard beacon along to every other live
// peer. With unicast datagrams standing in for a broadcast medium this is
// what makes discovery transitive: a newcomer announces to one seed and the
// seed's relays introduce it to the whole neighborhood; receivers then greet
// the newcomer directly and the mesh closes over the next interval.
func (n *Node) relayIntroduction(data []byte, origin string) {
	now := time.Now()
	n.mu.Lock()
	targets := make([]*peerState, 0, len(n.peers))
	for _, p := range n.peers {
		if p.key == origin || p.backoffUntil.After(now) {
			continue
		}
		targets = append(targets, p)
	}
	n.mu.Unlock()
	for _, p := range targets {
		if n.sendTo(data, p) {
			n.ctr.beaconRelays.Add(1)
		}
	}
}

// beaconBack answers a newly discovered neighbor with our own beacon so it
// learns us without waiting for our next scheduled announcement.
func (n *Node) beaconBack(key string) {
	data, ok := n.encodeBeacon()
	if !ok {
		return
	}
	n.mu.Lock()
	p := n.peerIndex[key]
	n.mu.Unlock()
	if p == nil {
		return
	}
	if n.sendTo(data, p) {
		n.ctr.beaconsSent.Add(1)
	}
}

// applyPopularityLocked mirrors Algorithm 5 on a live node: match, hash the
// node's user identity into the sketches, enlarge on a visible rank rise.
// Callers hold n.mu.
func (n *Node) applyPopularityLocked(ad *ads.Advertisement) {
	if !n.cfg.Popularity.Enabled || ad.Sketch == nil || !ad.MatchesAny(n.interests) {
		return
	}
	before := ad.Sketch.Rank()
	if !ad.Sketch.Add(uint64(n.cfg.ID) + 1) {
		return
	}
	after := ad.Sketch.Rank()
	if after > before {
		core.Enlarge(ad, after, n.cfg.Popularity)
	}
}

// gossipLoop fires due cache entries. With Opt2 each entry has its own
// postponable schedule; without, entries still carry per-entry times that
// simply advance by one round each firing — equivalent to round gossip with
// a per-ad phase.
func (n *Node) gossipLoop() {
	defer n.wg.Done()
	tick := n.cfg.RoundTime / 5
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-ticker.C:
			n.fireDue()
		}
	}
}

// beaconLoop announces the node every BeaconInterval, starting immediately
// so a cold-started node reaches its seeds without waiting a full interval.
func (n *Node) beaconLoop() {
	defer n.wg.Done()
	n.sendBeacon()
	ticker := time.NewTicker(n.cfg.BeaconInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-ticker.C:
			n.sendBeacon()
		}
	}
}

// encodeBeacon builds the node's current HELLO frame.
func (n *Node) encodeBeacon() ([]byte, bool) {
	pos, vel := n.cfg.Position(time.Now())
	b := discovery.Beacon{
		ID:    n.cfg.ID,
		Addr:  n.advertise,
		Pos:   pos,
		Vel:   vel,
		Range: n.cfg.Range,
		Epoch: n.epochUnix(),
	}
	data, err := b.Encode()
	if err != nil {
		n.logf("beacon encode: %v", err)
		return nil, false
	}
	return data, true
}

// sendBeacon announces the node to every live peer — plus the seeds while
// the neighbor table is empty, which is both the cold-start bootstrap and
// the isolation recovery: a node whose whole neighborhood aged out goes
// back to knocking on its configured doors.
func (n *Node) sendBeacon() {
	data, ok := n.encodeBeacon()
	if !ok {
		return
	}
	now := time.Now()
	n.mu.Lock()
	targets := make([]*peerState, 0, len(n.peers))
	for _, p := range n.peers {
		if p.backoffUntil.After(now) {
			continue
		}
		targets = append(targets, p)
	}
	var extras []string
	if n.table.Empty() {
		for _, s := range n.seeds {
			if n.peerIndex[s] == nil && s != n.advertise {
				extras = append(extras, s)
			}
		}
	}
	n.mu.Unlock()
	for _, p := range targets {
		if n.sendTo(data, p) {
			n.ctr.beaconsSent.Add(1)
		}
	}
	// Seeds are contacts, not peers: their send health is not tracked — a
	// dead seed simply never answers, and an alive one turns into a
	// neighbor through its beacon.
	for _, s := range extras {
		if _, err := n.conn.WriteTo(data, s); err != nil {
			n.ctr.sendErrors.Add(1)
			n.logf("beacon to seed %v: %v", s, err)
			continue
		}
		n.ctr.beaconsSent.Add(1)
	}
}

// fireDue broadcasts every cached ad whose scheduled time has arrived, and
// piggybacks the periodic expired-state sweeps: the ad cache, the seen set,
// and — with discovery enabled — the neighbor table, whose expired entries
// are evicted from the peer set (the membership failure detector).
func (n *Node) fireDue() {
	if n.table != nil {
		for _, nb := range n.table.Sweep(time.Now()) {
			n.ctr.neighborsExpired.Add(1)
			n.event("neighbor_expired", nb.Addr, nb.ID, "")
			n.RemovePeer(nb.Addr)
			n.logf("neighbor %d (%s) silent past the %v TTL: removed", nb.ID, nb.Addr, n.neighborTTL)
		}
	}
	pos, _ := n.cfg.Position(time.Now())
	var toSend []*ads.Advertisement
	var digest []ads.ID
	n.mu.Lock()
	now := n.now()
	n.cache.RemoveExpired(now) // expired ads just vanish
	n.pruneSeenLocked(now)
	n.pruneServedLocked(time.Now())
	for _, e := range n.cache.Entries() {
		if e.ScheduledAt > now {
			continue
		}
		e.Prob = n.forwardProbLocked(e.Ad, pos)
		if n.rnd.Bool(e.Prob) {
			toSend = append(toSend, e.Ad.Clone())
		}
		e.ScheduledAt = now + n.cfg.RoundTime.Seconds()
	}
	if n.digestEvery > 0 && now >= n.nextDigest && n.cache.Len() > 0 {
		n.nextDigest = now + float64(n.digestEvery)*n.cfg.RoundTime.Seconds()
		// A digest frame honors the batch soft cap too: when the cache holds
		// more IDs than fit, advertise a window starting at a random offset,
		// so successive digests cover the whole cache eventually.
		limit := maxIDsPerFrame
		if n.batchCap > 0 {
			if fit := (n.batchCap - idHeaderLen - 2) / 8; fit > 0 && fit < limit {
				limit = fit
			}
		}
		entries := n.cache.Entries()
		off := 0
		if len(entries) > limit {
			off = n.rnd.Intn(len(entries))
		}
		for i := 0; i < len(entries) && len(digest) < limit; i++ {
			digest = append(digest, entries[(off+i)%len(entries)].Ad.ID)
		}
	}
	n.mu.Unlock()
	if n.batchCap > 0 {
		n.gossipOut(toSend)
	} else {
		for _, ad := range toSend {
			n.broadcast(ad)
		}
	}
	if len(digest) > 0 {
		n.sendDigest(digest)
	}
}

// liveTargets snapshots the peers currently outside backoff windows.
func (n *Node) liveTargets() []*peerState {
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	targets := make([]*peerState, 0, len(n.peers))
	for _, p := range n.peers {
		if p.backoffUntil.After(now) {
			continue
		}
		targets = append(targets, p)
	}
	return targets
}

// gossipOut ships one round's firing ads as batch frames to every live
// peer: all due ads coalesce into as few datagrams as the soft cap allows,
// instead of one envelope per ad per peer. The ads must be private to the
// caller (clones): encoding happens outside n.mu.
func (n *Node) gossipOut(list []*ads.Advertisement) {
	if len(list) == 0 {
		return
	}
	pos, vel := n.cfg.Position(time.Now())
	frames, oversize := packBatches(n.cfg.ID, pos, vel, list, n.batchCap)
	if oversize > 0 {
		n.ctr.batchOversize.Add(uint64(oversize))
	}
	// One gossip decision fired per ad, batched or not — the broadcasts
	// counter keeps its meaning across wire formats.
	n.ctr.broadcasts.Add(uint64(len(list)))
	targets := n.liveTargets()
	for _, f := range frames {
		for _, p := range targets {
			if !n.takeBudget(len(f.data)) {
				n.ctr.budgetDeferred.Add(1)
				continue
			}
			if n.sendTo(f.data, p) {
				n.ctr.sent.Add(1)
				n.ctr.batchesSent.Add(1)
				n.batchAds.Observe(float64(f.ads))
				n.batchBytes.Observe(float64(len(f.data)))
			}
		}
	}
}

// sendDigest announces our live cached ad IDs to every live peer outside
// its serve block window.
func (n *Node) sendDigest(ids []ads.ID) {
	pos, _ := n.cfg.Position(time.Now())
	f := idFrame{Sender: n.cfg.ID, Pos: pos, IDs: ids}
	data, err := f.encode(digestMagic)
	if err != nil {
		n.logf("digest encode: %v", err)
		return
	}
	now := time.Now()
	for _, p := range n.liveTargets() {
		if n.servedBlocked(p.key, now) {
			n.ctr.blockedServes.Add(1)
			continue
		}
		if !n.takeBudget(len(data)) {
			n.ctr.budgetDeferred.Add(1)
			continue
		}
		if n.sendTo(data, p) {
			n.ctr.digestsSent.Add(1)
			n.digestIDs.Observe(float64(len(ids)))
		}
	}
}

// broadcast sends one ad to every peer destination that is not in backoff —
// the legacy one-envelope-per-ad wire format, kept for Issue's immediate
// announcement and for configurations with batching disabled. The ad must be
// private to the caller (a clone), never a pointer still reachable from the
// cache: encoding happens outside n.mu.
func (n *Node) broadcast(ad *ads.Advertisement) {
	pos, vel := n.cfg.Position(time.Now())
	env := envelope{Sender: n.cfg.ID, Pos: pos, Vel: vel, Ad: ad}
	data, err := env.encode()
	if err != nil {
		n.logf("encode: %v", err)
		return
	}
	n.ctr.broadcasts.Add(1)
	for _, p := range n.liveTargets() {
		if n.sendTo(data, p) {
			n.ctr.sent.Add(1)
		}
	}
}

// sendToAddr transmits one frame to a destination that may or may not be a
// tracked peer: known peers go through sendTo so their health sees the
// attempt; strangers (a puller heard before discovery added it) get a raw
// write.
func (n *Node) sendToAddr(data []byte, addr string) bool {
	n.mu.Lock()
	p := n.peerIndex[addr]
	n.mu.Unlock()
	if p != nil {
		return n.sendTo(data, p)
	}
	if _, err := n.conn.WriteTo(data, addr); err != nil {
		n.ctr.sendErrors.Add(1)
		n.logf("send to %v: %v", addr, err)
		return false
	}
	return true
}

// sendTo transmits one frame to a peer and updates its send health,
// reporting success. The global send-error counter is bumped on failure;
// what a success counts as (ad sent, beacon sent, relay) is the caller's
// business.
func (n *Node) sendTo(data []byte, p *peerState) bool {
	n.mu.Lock()
	detached := p.detached
	n.mu.Unlock()
	if detached {
		// The peer was removed after this snapshot was taken; its entry is
		// dead and must not accumulate health or trip backoff.
		return false
	}
	start := time.Now()
	_, err := n.conn.WriteTo(data, p.key)
	n.sendLatency.Observe(time.Since(start).Seconds())
	if err != nil {
		n.ctr.sendErrors.Add(1)
		n.peerSendFailed(p, err)
		return false
	}
	n.peerSendOK(p)
	return true
}

// peerSendFailed records one failed transmission and trips the peer into
// timed exponential backoff once the consecutive-failure limit is reached.
func (n *Node) peerSendFailed(p *peerState, err error) {
	n.mu.Lock()
	if p.detached {
		// Removed mid-send: the failure already hit the global counter, but
		// a dead entry's health and backoff stay frozen.
		n.mu.Unlock()
		return
	}
	p.failures++
	p.consecFails++
	tripped := p.consecFails >= n.failLimit
	var wait time.Duration
	if tripped {
		wait = p.nextBackoff
		if wait == 0 {
			wait = n.backoffBase
		}
		p.backoffUntil = time.Now().Add(wait)
		p.nextBackoff = wait * 2
		if p.nextBackoff > n.backoffMax {
			p.nextBackoff = n.backoffMax
		}
		p.consecFails = 0
		p.inBackoff = true
		n.ctr.peerBackoffs.Add(1)
		n.backoffDur.Observe(wait.Seconds())
		n.event("backoff_enter", p.key, 0, wait.String())
	}
	n.mu.Unlock()
	if tripped {
		n.logf("peer %v: backing off %v after repeated send failures: %v", p.key, wait, err)
	} else {
		n.logf("send to %v: %v", p.key, err)
	}
}

// peerSendOK resets the peer's failure streak and backoff window. The first
// success after a backoff window is the recovery edge, worth an event.
func (n *Node) peerSendOK(p *peerState) {
	n.mu.Lock()
	if p.detached {
		n.mu.Unlock()
		return
	}
	p.sent++
	p.consecFails = 0
	p.nextBackoff = 0
	if p.inBackoff {
		p.inBackoff = false
		n.event("backoff_exit", p.key, 0, "")
	}
	n.mu.Unlock()
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}
