// Package wire holds the datagram wire-format facts shared by the live
// node and the transports that carry its frames: the UDP payload bound, the
// leading magic byte of every frame family, and a header snooper that lets a
// medium (internal/node/memnet) learn a sender's position from any
// self-describing frame without importing the node layer itself.
//
// The package sits below internal/node and internal/node/memnet so the
// 65507-byte hard limit is defined exactly once — the node's batch soft-cap
// logic and the transport's refusal to carry oversized datagrams can never
// drift apart.
package wire

import (
	"encoding/binary"
	"math"

	"instantad/internal/geo"
)

const (
	// MaxPayload is the largest UDP payload: 65535 minus the 8-byte UDP and
	// 20-byte IPv4 headers. Frames beyond it cannot traverse a real socket,
	// so encoders refuse to build them and transports refuse to carry them.
	MaxPayload = 65507

	// EnvelopeMagic leads a legacy single-ad envelope (sender kinematics +
	// one ad).
	EnvelopeMagic = 0xAE
	// BatchMagic leads a multi-ad batch frame (sender kinematics + 1..n
	// length-prefixed ads packed under an MTU-aware soft cap).
	BatchMagic = 0xB1
	// DigestMagic leads a cache digest: the sender's live ad-ID list, sent
	// once per digest round so converged neighbors stop re-hearing payloads.
	DigestMagic = 0xB2
	// PullMagic leads a pull request: the ad IDs a digest receiver is
	// missing and wants served back as batch frames.
	PullMagic = 0xB3

	// senderPosOff is where the sender's position sits in every ad-layer
	// frame: magic(1) + version(1) + sender id(4), then X and Y as little-
	// endian float64s. Envelope, batch, digest and pull all share this
	// prefix by construction.
	senderPosOff = 6
	// version 1 is the only wire version of every ad-layer frame so far.
	version = 1
)

// SenderPos extracts the claimed sender position from an ad-layer frame
// (envelope, batch, digest, or pull). It reports false for other frame
// families, truncated headers, unknown versions, and non-finite coordinates
// — a snooping medium must never learn a position it could not trust.
func SenderPos(b []byte) (geo.Point, bool) {
	if len(b) < senderPosOff+16 || b[1] != version {
		return geo.Point{}, false
	}
	switch b[0] {
	case EnvelopeMagic, BatchMagic, DigestMagic, PullMagic:
	default:
		return geo.Point{}, false
	}
	x := math.Float64frombits(binary.LittleEndian.Uint64(b[senderPosOff:]))
	y := math.Float64frombits(binary.LittleEndian.Uint64(b[senderPosOff+8:]))
	if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
		return geo.Point{}, false
	}
	return geo.Point{X: x, Y: y}, true
}
