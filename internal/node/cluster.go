package node

import (
	"fmt"
	"time"

	"instantad/internal/ads"
	"instantad/internal/geo"
)

// Cluster is a set of live nodes on one machine, fully meshed at the
// datagram level, sharing a protocol epoch — the quickest way to stand up a
// real deployment for testing, demos and local experiments. The virtual
// radio (per-node Range) decides who actually hears whom.
type Cluster struct {
	Nodes []*Node
}

// NewCluster builds one node per configuration, wires every node to every
// other as a datagram peer, and aligns their protocol clocks. ListenAddr
// defaults to "127.0.0.1:0" when empty. Nodes are not started; call Start.
// On any error the already-bound sockets are closed.
func NewCluster(cfgs []Config) (*Cluster, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("node: empty cluster")
	}
	epoch := time.Now()
	c := &Cluster{}
	for i, cfg := range cfgs {
		if cfg.ListenAddr == "" {
			cfg.ListenAddr = "127.0.0.1:0"
		}
		n, err := New(cfg)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("node %d: %w", i, err)
		}
		n.SetEpoch(epoch)
		c.Nodes = append(c.Nodes, n)
	}
	for i, a := range c.Nodes {
		for j, b := range c.Nodes {
			if i == j {
				continue
			}
			if err := a.AddPeer(b.Addr()); err != nil {
				c.Close()
				return nil, err
			}
		}
	}
	return c, nil
}

// NewDiscoveryCluster builds one node per configuration and wires them by
// beacon discovery instead of a static mesh: the node at index seed is built
// first and every other node receives its address as the only bootstrap
// contact, so the peer sets are grown entirely by HELLO beacons. Every
// config must have a positive BeaconInterval; ListenAddr defaults to
// "127.0.0.1:0" when empty and no custom Transport is set. Nodes are not
// started; call Start. On any error the already-bound sockets are closed.
func NewDiscoveryCluster(cfgs []Config, seed int) (*Cluster, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("node: empty cluster")
	}
	if seed < 0 || seed >= len(cfgs) {
		return nil, fmt.Errorf("node: seed index %d outside the cluster", seed)
	}
	epoch := time.Now()
	c := &Cluster{Nodes: make([]*Node, len(cfgs))}
	build := func(i int, seedAddr string) error {
		cfg := cfgs[i]
		if cfg.BeaconInterval <= 0 {
			return fmt.Errorf("node %d: discovery cluster requires a beacon interval", i)
		}
		if cfg.ListenAddr == "" && cfg.Transport == nil {
			cfg.ListenAddr = "127.0.0.1:0"
		}
		if seedAddr != "" {
			cfg.Seeds = append(append([]string(nil), cfg.Seeds...), seedAddr)
		}
		n, err := New(cfg)
		if err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
		n.SetEpoch(epoch)
		c.Nodes[i] = n
		return nil
	}
	if err := build(seed, ""); err != nil {
		return nil, err
	}
	seedAddr := c.Nodes[seed].Addr()
	for i := range cfgs {
		if i == seed {
			continue
		}
		if err := build(i, seedAddr); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// WaitNeighbors polls until every node's neighbor table holds at least want
// entries or the timeout passes, reporting success — the discovery
// convergence condition.
func (c *Cluster) WaitNeighbors(want int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		all := true
		for _, n := range c.Nodes {
			if n.NeighborCount() < want {
				all = false
				break
			}
		}
		if all {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Start starts every node.
func (c *Cluster) Start() {
	for _, n := range c.Nodes {
		n.Start()
	}
}

// Close shuts every node down, returning the first error.
func (c *Cluster) Close() error {
	var first error
	for _, n := range c.Nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WaitAll polls until every node has heard the given ad or the timeout
// passes, reporting success.
func (c *Cluster) WaitAll(id ads.ID, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		all := true
		for _, n := range c.Nodes {
			if !n.Has(id) {
				all = false
				break
			}
		}
		if all {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TotalSent sums the datagrams sent across the cluster.
func (c *Cluster) TotalSent() uint64 {
	var total uint64
	for _, n := range c.Nodes {
		total += n.Stats().Sent
	}
	return total
}

// TotalStats sums every node's counters (gauges included) — the cluster-wide
// view the soak tests and demos assert on.
func (c *Cluster) TotalStats() Stats {
	var t Stats
	for _, n := range c.Nodes {
		t.Add(n.Stats())
	}
	return t
}

// ChainConfigs is a convenience for the canonical demo topology: n nodes in
// a line, spacing meters apart, with the given radio range and round time.
func ChainConfigs(n int, spacing, radioRange float64, round time.Duration) []Config {
	cfgs := make([]Config, n)
	for i := range cfgs {
		cfgs[i] = Config{
			ID:        uint32(i),
			Range:     radioRange,
			Position:  StaticPosition(geo.Point{X: float64(i) * spacing, Y: 0}),
			Alpha:     0.5,
			Beta:      0.5,
			RoundTime: round,
			CacheK:    10,
			Opt2:      true,
			Seed:      uint64(i) + 1,
		}
	}
	return cfgs
}
