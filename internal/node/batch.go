package node

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"instantad/internal/ads"
	"instantad/internal/geo"
	"instantad/internal/node/wire"
)

// The high-throughput wire layer: instead of one ad per datagram, a gossip
// round packs every firing ad into batch frames under an MTU-aware soft cap
// (SNIPPETS.md snippet 1's ADVERT_CAPACITY-below-MTU shape), and a periodic
// digest/pull exchange lets converged neighborhoods trade 8-byte ad IDs
// instead of full payloads. All three frame families share the envelope's
// header prefix (magic, version, sender, position) so the virtual radio and
// any snooping medium treat them uniformly.

const (
	batchMagic   = wire.BatchMagic
	digestMagic  = wire.DigestMagic
	pullMagic    = wire.PullMagic
	batchVersion = 1

	// batchHeaderLen is magic+version+sender(4)+pos(16)+vel(16) — identical
	// to the envelope header by construction.
	batchHeaderLen = envHeaderLen
	// idHeaderLen is magic+version+sender(4)+pos(16): digest and pull
	// frames carry no velocity (nothing schedules on it).
	idHeaderLen = 2 + 4 + 16

	// maxBatchAds bounds the ads one batch frame may claim, so a hostile
	// count cannot drive a decoder loop far past the datagram it arrived in.
	maxBatchAds = 512
	// maxIDsPerFrame bounds a digest or pull ID list; 2048 IDs is 16 KiB of
	// payload, far more cache than any node configuration holds.
	maxIDsPerFrame = 2048

	// minBatchSoftCap is the smallest configurable soft cap: headers plus at
	// least a few small ads must fit or batching degenerates.
	minBatchSoftCap = 512
	// defaultBatchSoftCap targets a typical 1500-byte Ethernet MTU minus
	// IP/UDP headers with headroom: batch frames under it avoid IP
	// fragmentation on common paths while still packing ~15 small ads.
	defaultBatchSoftCap = 1400
)

// batchFrame is the multi-ad datagram: sender identity and kinematics plus
// 1..maxBatchAds length-prefixed advertisements.
type batchFrame struct {
	Sender uint32
	Pos    geo.Point
	Vel    geo.Vec
	Ads    []*ads.Advertisement
}

// appendHeader writes the shared magic/version/sender/kinematics prefix.
func appendHeader(out []byte, magic byte, sender uint32, vals []float64) []byte {
	out = append(out, magic, batchVersion)
	out = binary.LittleEndian.AppendUint32(out, sender)
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

// decodeHeader parses the shared prefix, validating magic, version and
// finite kinematics. It returns the sender and the float fields.
func decodeHeader(data []byte, magic byte, nvals int) (uint32, []float64, error) {
	fixed := 6 + 8*nvals
	if len(data) < fixed {
		return 0, nil, errors.New("node: frame too short")
	}
	if data[0] != magic {
		return 0, nil, errors.New("node: bad magic")
	}
	if data[1] != batchVersion {
		return 0, nil, fmt.Errorf("node: unsupported version %d", data[1])
	}
	sender := binary.LittleEndian.Uint32(data[2:6])
	vals := make([]float64, nvals)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[6+8*i:]))
		if math.IsNaN(vals[i]) || math.IsInf(vals[i], 0) {
			return 0, nil, errors.New("node: non-finite kinematics")
		}
	}
	return sender, vals, nil
}

// encode serializes the batch frame. It refuses empty batches and frames no
// real socket could carry; the soft cap is the packer's business, not the
// codec's.
func (f *batchFrame) encode() ([]byte, error) {
	if len(f.Ads) == 0 {
		return nil, errors.New("node: empty batch")
	}
	if len(f.Ads) > maxBatchAds {
		return nil, fmt.Errorf("node: batch of %d ads exceeds %d", len(f.Ads), maxBatchAds)
	}
	out := make([]byte, 0, batchHeaderLen+len(f.Ads)*96)
	out = appendHeader(out, batchMagic, f.Sender,
		[]float64{f.Pos.X, f.Pos.Y, f.Vel.X, f.Vel.Y})
	out = binary.AppendUvarint(out, uint64(len(f.Ads)))
	for _, ad := range f.Ads {
		adBytes, err := ad.Encode()
		if err != nil {
			return nil, err
		}
		out = binary.AppendUvarint(out, uint64(len(adBytes)))
		out = append(out, adBytes...)
	}
	if len(out) > wire.MaxPayload {
		return nil, fmt.Errorf("node: batch of %d bytes exceeds the %d-byte datagram limit", len(out), wire.MaxPayload)
	}
	return out, nil
}

// decodeBatch parses a batch datagram. Every claimed ad must decode and the
// frame must end exactly at the last ad — a truncated or padded batch is
// malformed as a whole, mirroring how UDP delivers datagrams whole or not
// at all.
func decodeBatch(data []byte) (*batchFrame, error) {
	if len(data) > wire.MaxPayload {
		return nil, errors.New("node: datagram too long")
	}
	sender, vals, err := decodeHeader(data, batchMagic, 4)
	if err != nil {
		return nil, err
	}
	f := &batchFrame{
		Sender: sender,
		Pos:    geo.Point{X: vals[0], Y: vals[1]},
		Vel:    geo.Vec{X: vals[2], Y: vals[3]},
	}
	p := data[batchHeaderLen:]
	count, n := binary.Uvarint(p)
	if n <= 0 || count == 0 || count > maxBatchAds {
		return nil, errors.New("node: bad batch count")
	}
	p = p[n:]
	for i := uint64(0); i < count; i++ {
		l, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < l {
			return nil, errors.New("node: truncated batch entry")
		}
		ad, err := ads.Decode(p[n : n+int(l)])
		if err != nil {
			return nil, err
		}
		f.Ads = append(f.Ads, ad)
		p = p[n+int(l):]
	}
	if len(p) != 0 {
		return nil, errors.New("node: trailing garbage after batch")
	}
	return f, nil
}

// idFrame is the digest/pull shape: the sender, its position (for the
// virtual radio), and a list of ad IDs — the cache contents for a digest,
// the missing set for a pull.
type idFrame struct {
	Sender uint32
	Pos    geo.Point
	IDs    []ads.ID
}

// encode serializes the frame under the given magic (digestMagic or
// pullMagic).
func (f *idFrame) encode(magic byte) ([]byte, error) {
	if len(f.IDs) == 0 {
		return nil, errors.New("node: empty ID frame")
	}
	if len(f.IDs) > maxIDsPerFrame {
		return nil, fmt.Errorf("node: %d IDs exceed %d per frame", len(f.IDs), maxIDsPerFrame)
	}
	out := make([]byte, 0, idHeaderLen+2+8*len(f.IDs))
	out = appendHeader(out, magic, f.Sender, []float64{f.Pos.X, f.Pos.Y})
	out = binary.AppendUvarint(out, uint64(len(f.IDs)))
	for _, id := range f.IDs {
		out = binary.LittleEndian.AppendUint32(out, id.Issuer)
		out = binary.LittleEndian.AppendUint32(out, id.Seq)
	}
	if len(out) > wire.MaxPayload {
		return nil, fmt.Errorf("node: ID frame of %d bytes exceeds the %d-byte datagram limit", len(out), wire.MaxPayload)
	}
	return out, nil
}

// decodeIDFrame parses a digest or pull datagram (the caller picks the
// expected magic from the leading byte it dispatched on).
func decodeIDFrame(data []byte, magic byte) (*idFrame, error) {
	if len(data) > wire.MaxPayload {
		return nil, errors.New("node: datagram too long")
	}
	sender, vals, err := decodeHeader(data, magic, 2)
	if err != nil {
		return nil, err
	}
	f := &idFrame{Sender: sender, Pos: geo.Point{X: vals[0], Y: vals[1]}}
	p := data[idHeaderLen:]
	count, n := binary.Uvarint(p)
	if n <= 0 || count == 0 || count > maxIDsPerFrame {
		return nil, errors.New("node: bad ID count")
	}
	p = p[n:]
	if uint64(len(p)) != 8*count {
		return nil, errors.New("node: ID list length mismatch")
	}
	f.IDs = make([]ads.ID, count)
	for i := range f.IDs {
		f.IDs[i] = ads.ID{
			Issuer: binary.LittleEndian.Uint32(p),
			Seq:    binary.LittleEndian.Uint32(p[4:]),
		}
		p = p[8:]
	}
	return f, nil
}

// packedBatch is one ready-to-send batch datagram plus its ad count (for
// the batch-size histogram).
type packedBatch struct {
	data []byte
	ads  int
}

// packBatches greedily packs the ads into batch frames no larger than the
// soft cap. An ad whose own frame exceeds the cap is emitted alone anyway —
// a datagram cannot be fragmented at this layer — and counted in oversize.
// Ads that fail to encode are skipped (they were validated at admission, so
// this is defensive only).
func packBatches(sender uint32, pos geo.Point, vel geo.Vec, list []*ads.Advertisement, softCap int) (frames []packedBatch, oversize int) {
	if softCap <= 0 || softCap > wire.MaxPayload {
		softCap = wire.MaxPayload
	}
	var cur *batchFrame
	curLen := 0
	flush := func() {
		if cur == nil {
			return
		}
		data, err := cur.encode()
		if err == nil {
			frames = append(frames, packedBatch{data: data, ads: len(cur.Ads)})
		}
		cur, curLen = nil, 0
	}
	for _, ad := range list {
		// Cost of this ad in a frame: uvarint length prefix + encoding.
		sz := ad.WireSize()
		cost := uvarintLen(uint64(sz)) + sz
		// A fresh frame costs header + count varint (≤ 2 bytes at our caps).
		if cur != nil && (curLen+cost > softCap || len(cur.Ads) >= maxBatchAds) {
			flush()
		}
		if cur == nil {
			cur = &batchFrame{Sender: sender, Pos: pos, Vel: vel}
			curLen = batchHeaderLen + 2
			if curLen+cost > softCap {
				oversize++
			}
		}
		cur.Ads = append(cur.Ads, ad)
		curLen += cost
		if curLen > softCap {
			// The oversize single-ad case: ship it alone immediately.
			flush()
		}
	}
	flush()
	return frames, oversize
}

// uvarintLen is the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
