package node

import (
	"net"
	"testing"
	"time"

	"instantad/internal/core"
	"instantad/internal/geo"
	"instantad/internal/node/memnet"
)

// discoveryConfig returns a fast-beacon memnet node config at the given
// virtual position. No static peers: membership is discovery's job.
func discoveryConfig(sb *memnet.Switchboard, id uint32, pos geo.Point) Config {
	cfg := testConfig(id, pos)
	cfg.ListenAddr = "mem:"
	cfg.Transport = sb.Transport()
	cfg.BeaconInterval = 100 * time.Millisecond
	cfg.NeighborTTL = 350 * time.Millisecond
	return cfg
}

// gridPositions lays n points on a square grid with the given spacing.
func gridPositions(n int, spacing float64) []geo.Point {
	side := 1
	for side*side < n {
		side++
	}
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i%side) * spacing, Y: float64(i/side) * spacing}
	}
	return pts
}

// TestAddPeerDeduplicates pins the peer-identity contract: re-adding a peer
// — under the same or an equivalent spelling — is a no-op that neither grows
// the peer list (which would double every datagram toward it) nor resets the
// peer's accumulated send-health state.
func TestAddPeerDeduplicates(t *testing.T) {
	n, err := New(testConfig(1, geo.Point{}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })

	sink, err := New(testConfig(2, geo.Point{X: 10}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sink.Close() })
	_, port, err := net.SplitHostPort(sink.Addr())
	if err != nil {
		t.Fatal(err)
	}

	if err := n.AddPeer(sink.Addr()); err != nil {
		t.Fatal(err)
	}
	// Seed some history so a reset would be visible.
	n.mu.Lock()
	n.peers[0].sent, n.peers[0].failures = 7, 3
	n.mu.Unlock()

	for _, spelling := range []string{
		sink.Addr(),
		"localhost:" + port, // resolves to the same canonical address
	} {
		if err := n.AddPeer(spelling); err != nil {
			t.Fatalf("re-add %q: %v", spelling, err)
		}
	}
	peers := n.Peers()
	if len(peers) != 1 {
		t.Fatalf("%d peer entries after re-adds, want 1: %+v", len(peers), peers)
	}
	if peers[0].Sent != 7 || peers[0].Failures != 3 {
		t.Errorf("re-add reset send health: %+v", peers[0])
	}
}

// TestClusterPartialFailureReleasesSockets binds a fixed port as cluster
// member 0 and poisons member 1 so NewCluster fails after the first socket
// is up: the constructor must close what it bound, leaving the port free.
func TestClusterPartialFailureReleasesSockets(t *testing.T) {
	// Grab a loopback port the OS considers free, then release it for the
	// cluster to bind by fixed address.
	probe, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.LocalAddr().String()
	_ = probe.Close()

	cfgs := ChainConfigs(2, 100, 250, 40*time.Millisecond)
	cfgs[0].ListenAddr = addr
	cfgs[1].CacheK = 0 // invalid: New fails after member 0 bound
	if _, err := NewCluster(cfgs); err == nil {
		t.Fatal("invalid cluster accepted")
	}
	rebound, err := net.ListenUDP("udp", mustUDPAddr(t, addr))
	if err != nil {
		t.Fatalf("port still held after cluster construction failed: %v", err)
	}
	_ = rebound.Close()
}

func mustUDPAddr(t *testing.T, addr string) *net.UDPAddr {
	t.Helper()
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestClusterCloseTwice checks Cluster.Close is safe to call repeatedly —
// the second call reports the same (nil) outcome instead of double-closing.
func TestClusterCloseTwice(t *testing.T) {
	c, err := NewCluster(ChainConfigs(3, 100, 250, 40*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	if err := c.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// TestDiscoveryConfigValidation covers the beacon-specific config checks.
func TestDiscoveryConfigValidation(t *testing.T) {
	mutations := map[string]func(*Config){
		"negative interval":  func(c *Config) { c.BeaconInterval = -time.Second },
		"ttl without beacon": func(c *Config) { c.NeighborTTL = time.Second },
		"seeds without beacon": func(c *Config) {
			c.Seeds = []string{"127.0.0.1:7001"}
		},
		"ttl below interval": func(c *Config) {
			c.BeaconInterval = time.Second
			c.NeighborTTL = 500 * time.Millisecond
		},
		"bad seed address": func(c *Config) {
			c.BeaconInterval = time.Second
			c.Seeds = []string{"not an address::"}
		},
	}
	for name, mutate := range mutations {
		cfg := testConfig(0, geo.Point{})
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestDiscoveryConvergenceFromSingleSeed is the headline acceptance test: 60
// real nodes on an in-memory switchboard, no static peer lists, exactly one
// bootstrap contact — and every node must end up knowing all 59 in-range
// peers, purely through beacons, beacon-backs and relayed introductions.
// An ad issued afterwards must flood the discovered mesh edge to edge.
func TestDiscoveryConvergenceFromSingleSeed(t *testing.T) {
	const nNodes = 60
	sb, err := memnet.New(memnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	positions := gridPositions(nNodes, 20) // 8×8 grid, max diagonal ~198 m < range
	cfgs := make([]Config, nNodes)
	for i := range cfgs {
		cfgs[i] = discoveryConfig(sb, uint32(i), positions[i])
	}
	c, err := NewDiscoveryCluster(cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Start()

	if !c.WaitNeighbors(nNodes-1, 15*time.Second) {
		worst, at := nNodes, -1
		for i, n := range c.Nodes {
			if got := n.NeighborCount(); got < worst {
				worst, at = got, i
			}
		}
		t.Fatalf("discovery never converged: node %d knows only %d/%d neighbors; cluster stats %+v",
			at, worst, nNodes-1, c.TotalStats())
	}
	// The peer sets must track the tables: full mesh, no duplicates.
	for i, n := range c.Nodes {
		if got := len(n.Peers()); got != nNodes-1 {
			t.Fatalf("node %d has %d peers after convergence, want %d", i, got, nNodes-1)
		}
	}
	st := c.TotalStats()
	if st.BeaconRelays == 0 {
		t.Error("converged without any relayed introductions — topology suspect")
	}

	// End to end: an ad from a corner floods the discovered mesh.
	ad, err := c.Nodes[nNodes-1].Issue(core.AdSpec{R: 1000, D: 30, Category: "petrol"})
	if err != nil {
		t.Fatal(err)
	}
	if !c.WaitAll(ad.ID, 10*time.Second) {
		t.Fatal("ad never reached every discovered node")
	}
}

// TestDiscoveryChurnAgesOutDeadNode kills one node mid-run: within one
// neighbor TTL (plus a sweep tick of slack) every survivor must have dropped
// it from both the neighbor table and the peer set, and counted the expiry.
func TestDiscoveryChurnAgesOutDeadNode(t *testing.T) {
	const nNodes = 20
	sb, err := memnet.New(memnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	positions := gridPositions(nNodes, 20)
	cfgs := make([]Config, nNodes)
	for i := range cfgs {
		cfgs[i] = discoveryConfig(sb, uint32(i), positions[i])
	}
	c, err := NewDiscoveryCluster(cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Start()
	if !c.WaitNeighbors(nNodes-1, 15*time.Second) {
		t.Fatalf("cluster never converged before the churn; stats %+v", c.TotalStats())
	}

	victim := c.Nodes[7]
	victimID, victimAddr := uint32(7), victim.Addr()
	if err := victim.Close(); err != nil {
		t.Fatal(err)
	}
	killed := time.Now()

	ttl := cfgs[7].NeighborTTL
	gone := waitFor(t, ttl+2*time.Second, func() bool {
		for i, n := range c.Nodes {
			if i == 7 {
				continue
			}
			if _, known := n.table.Get(victimID); known {
				return false
			}
			for _, p := range n.Peers() {
				if p.Addr == victimAddr {
					return false
				}
			}
		}
		return true
	})
	elapsed := time.Since(killed)
	if !gone {
		t.Fatalf("dead node still known somewhere after %v (TTL %v)", elapsed, ttl)
	}
	// One sweep-tick of slack on top of the TTL: the gossip loop sweeps
	// every RoundTime/5.
	if slack := ttl + cfgs[7].RoundTime; elapsed > slack+500*time.Millisecond {
		t.Errorf("age-out took %v, want within ~%v", elapsed, slack)
	}
	var expired uint64
	for i, n := range c.Nodes {
		if i != 7 {
			expired += n.Stats().NeighborsExpired
		}
	}
	if expired < uint64(nNodes-1) {
		t.Errorf("only %d neighbor expiries counted across %d survivors", expired, nNodes-1)
	}
}

// TestDiscoveryIsolationRecovery checks the seed's second job: a node whose
// entire neighborhood aged out goes back to beaconing its configured seeds,
// so when the seed restarts on the same address the mesh re-forms.
func TestDiscoveryIsolationRecovery(t *testing.T) {
	sb, err := memnet.New(memnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	seedCfg := discoveryConfig(sb, 100, geo.Point{})
	seedCfg.ListenAddr = "mem:seed"
	seed, err := New(seedCfg)
	if err != nil {
		t.Fatal(err)
	}
	follower, err := New(func() Config {
		cfg := discoveryConfig(sb, 101, geo.Point{X: 10})
		cfg.Seeds = []string{"mem:seed"}
		return cfg
	}())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = follower.Close() })
	seed.Start()
	follower.Start()
	if !waitFor(t, 5*time.Second, func() bool { return follower.NeighborCount() == 1 }) {
		t.Fatal("follower never found the seed")
	}

	// Seed dies; the follower's world empties.
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 5*time.Second, func() bool {
		return follower.NeighborCount() == 0 && len(follower.Peers()) == 0
	}) {
		t.Fatalf("dead seed never aged out: %d neighbors, %d peers",
			follower.NeighborCount(), len(follower.Peers()))
	}

	// Seed restarts on the same address (new identity, same door): the
	// isolated follower must rediscover it without any intervention.
	rebornCfg := discoveryConfig(sb, 102, geo.Point{})
	rebornCfg.ListenAddr = "mem:seed"
	reborn, err := New(rebornCfg)
	if err != nil {
		t.Fatalf("seed address not rebindable: %v", err)
	}
	t.Cleanup(func() { _ = reborn.Close() })
	reborn.Start()
	if !waitFor(t, 5*time.Second, func() bool {
		nb, ok := follower.table.Get(102)
		return ok && nb.Addr == "mem:seed" && reborn.NeighborCount() == 1
	}) {
		t.Fatalf("isolated follower never recovered via its seed; follower stats %+v", follower.Stats())
	}
}

// TestDiscoveryRangePartition runs two clumps far beyond radio range on a
// range-partitioning medium: each clump converges internally, no node learns
// a far one, and the medium counts the cross-clump beacons it refused — the
// bootstrap knocking of nodes that can never reach their seed.
func TestDiscoveryRangePartition(t *testing.T) {
	sb, err := memnet.New(memnet.Config{Range: 250})
	if err != nil {
		t.Fatal(err)
	}
	// Clump A near the origin, clump B 10 km east; everyone seeds on a0.
	positions := []geo.Point{
		{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 0, Y: 30}, // clump A
		{X: 10000, Y: 0}, {X: 10030, Y: 0}, {X: 10000, Y: 30}, // clump B
	}
	nodes := make([]*Node, len(positions))
	epoch := time.Now()
	var seedAddr string
	for i, pos := range positions {
		cfg := discoveryConfig(sb, uint32(i), pos)
		if i > 0 {
			cfg.Seeds = []string{seedAddr}
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.SetEpoch(epoch)
		if i == 0 {
			seedAddr = n.Addr()
		}
		nodes[i] = n
		t.Cleanup(func() { _ = n.Close() })
	}
	for _, n := range nodes {
		n.Start()
	}

	// Clump A (including the seed) must fully interconnect.
	if !waitFor(t, 5*time.Second, func() bool {
		return nodes[0].NeighborCount() == 2 && nodes[1].NeighborCount() == 2 && nodes[2].NeighborCount() == 2
	}) {
		t.Fatalf("clump A never converged: %d/%d/%d neighbors",
			nodes[0].NeighborCount(), nodes[1].NeighborCount(), nodes[2].NeighborCount())
	}
	// Clump B's beacons toward the far seed die on the medium: nobody there
	// learns anybody, and the medium has counted the refusals.
	time.Sleep(300 * time.Millisecond)
	for i := 3; i < 6; i++ {
		if got := nodes[i].NeighborCount(); got != 0 {
			t.Errorf("isolated node %d discovered %d neighbors across a 10 km gap", i, got)
		}
	}
	if st := sb.Stats(); st.OutOfRange == 0 {
		t.Errorf("medium carried everything despite the partition: %+v", st)
	}
}

// TestDiscoveryDisabledIgnoresBeacons pins the legacy mode: a node without a
// beacon interval consumes beacon frames without growing state or failing —
// discovery traffic on a shared port cannot disturb a static deployment.
func TestDiscoveryDisabledIgnoresBeacons(t *testing.T) {
	nodes := cluster(t, []geo.Point{{X: 0, Y: 0}}, nil)
	n := nodes[0]
	conn, err := netDial(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	data, ok := func() ([]byte, bool) {
		m, err := New(func() Config {
			cfg := testConfig(50, geo.Point{X: 5})
			cfg.BeaconInterval = time.Hour // discovery on, but never fires
			return cfg
		}())
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		return m.encodeBeacon()
	}()
	if !ok {
		t.Fatal("beacon encode failed")
	}
	peersBefore := len(n.Peers())
	for i := 0; i < 3; i++ {
		if _, err := conn.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	// Prove the frames were consumed (not queued) by pushing a real ad
	// through afterwards.
	if _, err := conn.Write(validDatagram(t, 77)); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 2*time.Second, func() bool { return n.Stats().Received == 1 }) {
		t.Fatalf("ad after beacons never processed: %+v", n.Stats())
	}
	if n.NeighborCount() != 0 || len(n.Peers()) != peersBefore {
		t.Errorf("static node grew state from beacons: %d neighbors, %d peers",
			n.NeighborCount(), len(n.Peers()))
	}
	if n.Stats().Malformed != 0 {
		t.Errorf("well-formed beacons counted as malformed: %+v", n.Stats())
	}
}

// TestDiscoveryStatsFlow spot-checks the new counters on a live pair.
func TestDiscoveryStatsFlow(t *testing.T) {
	sb, err := memnet.New(memnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{
		discoveryConfig(sb, 0, geo.Point{}),
		discoveryConfig(sb, 1, geo.Point{X: 10}),
	}
	// A deliberately skewed epoch on one side must be noticed, not fatal.
	c, err := NewDiscoveryCluster(cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Nodes[1].SetEpoch(time.Now().Add(-time.Hour))
	c.Start()
	if !c.WaitNeighbors(1, 5*time.Second) {
		t.Fatal("pair never discovered each other")
	}
	st := c.TotalStats()
	if st.BeaconsSent == 0 || st.BeaconsRecv == 0 {
		t.Errorf("beacon counters silent: %+v", st)
	}
	if st.EpochSkew == 0 {
		t.Errorf("hour-wide epoch skew unnoticed: %+v", st)
	}
	if st.NeighborsLive != 2 {
		t.Errorf("NeighborsLive = %d across a discovered pair", st.NeighborsLive)
	}
}
