package memnet

import (
	"errors"
	"net"
	"testing"
	"time"

	"instantad/internal/geo"
	"instantad/internal/node/discovery"
)

func mustListen(t *testing.T, s *Switchboard, addr string) *Conn {
	t.Helper()
	c, err := s.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Loss: -0.1},
		{Loss: 1.1},
		{Latency: -time.Second},
		{Range: -1},
		{QueueLen: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestDeliveryAndAddresses(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := mustListen(t, s, "")
	b := mustListen(t, s, "mem:beta")
	if a.LocalAddr() == b.LocalAddr() {
		t.Fatalf("colliding addresses %q", a.LocalAddr())
	}
	if _, err := s.Listen("mem:beta"); err == nil {
		t.Error("double bind accepted")
	}
	if _, err := s.Listen("udp:nope"); err == nil {
		t.Error("foreign prefix accepted")
	}
	if _, err := s.Resolve("mem:beta"); err != nil {
		t.Errorf("resolve: %v", err)
	}
	for _, bad := range []string{"", "mem:", "127.0.0.1:7001"} {
		if _, err := s.Resolve(bad); err == nil {
			t.Errorf("resolved %q", bad)
		}
	}

	msg := []byte("hello")
	if _, err := a.WriteTo(msg, b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, from, err := b.ReadFrom(buf)
	if err != nil || string(buf[:n]) != "hello" || from != a.LocalAddr() {
		t.Fatalf("read %q from %q, err %v", buf[:n], from, err)
	}
	if got := s.Stats().Delivered; got != 1 {
		t.Errorf("Delivered = %d", got)
	}
}

func TestWriteFaults(t *testing.T) {
	s, _ := New(Config{})
	a := mustListen(t, s, "")
	// To nobody: succeeds like UDP, counted.
	if _, err := a.WriteTo([]byte("x"), "mem:ghost"); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().NoEndpoint; got != 1 {
		t.Errorf("NoEndpoint = %d", got)
	}
	// Unroutable address family and oversized payloads are local errors.
	if _, err := a.WriteTo([]byte("x"), "127.0.0.1:1"); err == nil {
		t.Error("foreign destination accepted")
	}
	if _, err := a.WriteTo(make([]byte, maxPayload+1), "mem:ghost"); err == nil {
		t.Error("oversized datagram accepted")
	}
}

func TestCloseSemantics(t *testing.T) {
	s, _ := New(Config{})
	a := mustListen(t, s, "")
	b, err := s.Listen("mem:victim")
	if err != nil {
		t.Fatal(err)
	}
	readErr := make(chan error, 1)
	go func() {
		_, _, err := b.ReadFrom(make([]byte, 16))
		readErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	select {
	case err := <-readErr:
		if !errors.Is(err, net.ErrClosed) {
			t.Errorf("blocked read returned %v, want net.ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked read never released")
	}
	if _, err := b.WriteTo([]byte("x"), a.LocalAddr()); !errors.Is(err, net.ErrClosed) {
		t.Errorf("write on closed conn: %v", err)
	}
	// Sends toward the dead endpoint vanish silently.
	before := s.Stats().NoEndpoint
	if _, err := a.WriteTo([]byte("x"), "mem:victim"); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().NoEndpoint; got != before+1 {
		t.Errorf("NoEndpoint %d → %d", before, got)
	}
	// The address is free again — the restart path.
	b2, err := s.Listen("mem:victim")
	if err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	_ = b2.Close()
}

func TestSeededLossIsDeterministic(t *testing.T) {
	run := func() (delivered, lost uint64) {
		s, _ := New(Config{Loss: 0.5, Seed: 42})
		a := mustListen(t, s, "mem:a")
		b := mustListen(t, s, "mem:b")
		for i := 0; i < 200; i++ {
			if _, err := a.WriteTo([]byte{byte(i)}, b.LocalAddr()); err != nil {
				t.Fatal(err)
			}
		}
		st := s.Stats()
		return st.Delivered, st.Lost
	}
	d1, l1 := run()
	d2, l2 := run()
	if d1 != d2 || l1 != l2 {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", d1, l1, d2, l2)
	}
	if d1+l1 != 200 || l1 == 0 || d1 == 0 {
		t.Errorf("loss model degenerate: delivered %d, lost %d", d1, l1)
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	s, _ := New(Config{Latency: 60 * time.Millisecond})
	a := mustListen(t, s, "")
	b := mustListen(t, s, "")
	start := time.Now()
	if _, err := a.WriteTo([]byte("slow"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.ReadFrom(make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("delivered after %v despite 60ms latency", elapsed)
	}
}

// beaconFrom encodes a beacon claiming the given position for the endpoint.
func beaconFrom(t *testing.T, id uint32, addr string, pos geo.Point) []byte {
	t.Helper()
	data, err := discovery.Beacon{ID: id, Addr: addr, Pos: pos, Range: 250}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRangePartitionFromBeaconPositions(t *testing.T) {
	s, _ := New(Config{Range: 100})
	a := mustListen(t, s, "mem:a")
	b := mustListen(t, s, "mem:b")

	// Before any beacon the medium cannot place the endpoints: it carries.
	if _, err := a.WriteTo([]byte("blind"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Delivered != 1 || st.OutOfRange != 0 {
		t.Fatalf("pre-beacon stats %+v", st)
	}

	// Beacons place a at (0,0) and b at (500,0) — beyond the 100m medium.
	if _, err := a.WriteTo(beaconFrom(t, 1, "mem:a", geo.Point{}), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteTo(beaconFrom(t, 2, "mem:b", geo.Point{X: 500}), a.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if p, ok := s.Position("mem:b"); !ok || p.X != 500 {
		t.Fatalf("snooped position %v %v", p, ok)
	}
	before := s.Stats().OutOfRange
	if _, err := a.WriteTo([]byte("far"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().OutOfRange; got != before+1 {
		t.Errorf("OutOfRange %d → %d: far datagram carried", before, got)
	}

	// b moves into range; the next beacon re-places it and traffic flows.
	if _, err := b.WriteTo(beaconFrom(t, 2, "mem:b", geo.Point{X: 50}), a.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	delivered := s.Stats().Delivered
	if _, err := a.WriteTo([]byte("near"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Delivered; got != delivered+1 {
		t.Errorf("Delivered %d → %d: near datagram dropped", delivered, got)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	s, _ := New(Config{QueueLen: 4})
	a := mustListen(t, s, "")
	b := mustListen(t, s, "")
	for i := 0; i < 10; i++ {
		if _, err := a.WriteTo([]byte{byte(i)}, b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Delivered != 4 || st.QueueOverflow != 6 {
		t.Errorf("delivered %d, overflowed %d with a 4-deep queue", st.Delivered, st.QueueOverflow)
	}
}
