// Package memnet is a deterministic in-process datagram network for
// many-node live-protocol tests: a shared Switchboard hands out endpoints
// satisfying the node layer's PacketConn interface, and Transport() adapts
// the switchboard itself to node.Transport — so 50–200 real Node instances
// can run in one test binary with no OS sockets, no ports, and no kernel
// buffering nondeterminism.
//
// The switchboard models the physical medium, not a router: datagrams are
// delivered whole or not at all, loss is drawn from one seeded stream,
// latency is a fixed configurable delay, and — the radio part — delivery can
// be partitioned by geometry. The switchboard snoops HELLO beacons
// (discovery.BeaconMagic frames) crossing it to learn each endpoint's
// position, and with Range > 0 it refuses to carry a datagram between
// endpoints it knows to be farther apart than the range, exactly like the
// unit-disk radio the receiving node would apply anyway. Unknown positions
// are carried: a node that has never beaconed is not yet placeable.
package memnet

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"instantad/internal/geo"
	"instantad/internal/node/discovery"
	"instantad/internal/node/transport"
	"instantad/internal/node/wire"
	"instantad/internal/rng"
)

const (
	// maxPayload is the UDP datagram payload bound, shared with the live
	// node via internal/node/wire: frames beyond it could not traverse a
	// real socket, so the in-memory medium refuses them too.
	maxPayload = wire.MaxPayload
	// defaultQueueLen is the per-endpoint receive buffer in datagrams.
	defaultQueueLen = 4096
	// addrPrefix namespaces switchboard addresses ("mem:3").
	addrPrefix = "mem:"
)

// Config parameterizes a switchboard.
type Config struct {
	// Latency delays every delivery by a fixed interval. Zero delivers
	// synchronously in the sender's goroutine — the deterministic mode.
	Latency time.Duration
	// Loss is the per-datagram drop probability, drawn from the seeded
	// stream. Zero means lossless.
	Loss float64
	// Seed drives the loss stream; the same seed replays the same faults.
	Seed uint64
	// Range, when positive, partitions delivery by geometry: datagrams
	// between endpoints whose last-beaconed positions are farther apart
	// than Range are dropped by the medium.
	Range float64
	// QueueLen is the per-endpoint receive buffer in datagrams; a full
	// buffer drops like a full kernel socket buffer. Zero means 4096.
	QueueLen int
}

func (c Config) validate() error {
	if c.Loss < 0 || c.Loss > 1 {
		return fmt.Errorf("memnet: loss %v outside [0,1]", c.Loss)
	}
	if c.Latency < 0 {
		return errors.New("memnet: negative latency")
	}
	if c.Range < 0 {
		return errors.New("memnet: negative range")
	}
	if c.QueueLen < 0 {
		return errors.New("memnet: negative queue length")
	}
	return nil
}

// Stats counts what the medium did.
type Stats struct {
	Delivered      uint64 `json:"delivered"`
	DeliveredBytes uint64 `json:"delivered_bytes"` // payload bytes of delivered datagrams
	MaxDatagram    uint64 `json:"max_datagram"`    // largest datagram delivered so far
	Lost           uint64 `json:"lost"`            // dropped by the loss model
	OutOfRange     uint64 `json:"out_of_range"`    // dropped by the range partition
	NoEndpoint     uint64 `json:"no_endpoint"`     // destination not (or no longer) listening
	QueueOverflow  uint64 `json:"queue_overflow"`  // receiver buffer full
}

// Switchboard is the shared in-memory medium.
type Switchboard struct {
	cfg Config

	mu    sync.Mutex
	rnd   *rng.Stream
	eps   map[string]*Conn
	pos   map[string]geo.Point // endpoint addr → last beaconed position
	next  int
	stats Stats
}

// New builds an empty switchboard.
func New(cfg Config) (*Switchboard, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.QueueLen == 0 {
		cfg.QueueLen = defaultQueueLen
	}
	return &Switchboard{
		cfg: cfg,
		rnd: rng.New(cfg.Seed),
		eps: make(map[string]*Conn),
		pos: make(map[string]geo.Point),
	}, nil
}

// Listen binds an endpoint. An empty addr (or a trailing-colon addr like
// "mem:") auto-assigns the next free "mem:N" address; an explicit "mem:name"
// binds exactly that address, failing if it is taken — which allows a closed
// endpoint's address to be re-bound, the restart path the isolation-recovery
// tests exercise.
func (s *Switchboard) Listen(addr string) (*Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch addr {
	case "", addrPrefix:
		for {
			addr = fmt.Sprintf("%s%d", addrPrefix, s.next)
			s.next++
			if _, taken := s.eps[addr]; !taken {
				break
			}
		}
	default:
		if !strings.HasPrefix(addr, addrPrefix) {
			return nil, fmt.Errorf("memnet: address %q is not %q-prefixed", addr, addrPrefix)
		}
		if _, taken := s.eps[addr]; taken {
			return nil, fmt.Errorf("memnet: address %q already bound", addr)
		}
	}
	c := &Conn{
		sb:   s,
		addr: addr,
		ch:   make(chan packet, s.cfg.QueueLen),
		done: make(chan struct{}),
	}
	s.eps[addr] = c
	return c, nil
}

// Transport adapts the switchboard to the node layer's Transport interface.
// The method sets already line up; Go just needs Listen's concrete *Conn
// result lifted to the PacketConn interface.
func (s *Switchboard) Transport() transport.Transport { return boardTransport{s} }

type boardTransport struct{ s *Switchboard }

func (t boardTransport) Listen(addr string) (transport.PacketConn, error) { return t.s.Listen(addr) }

func (t boardTransport) Resolve(addr string) (string, error) { return t.s.Resolve(addr) }

// Resolve canonicalizes an address: switchboard addresses are already
// canonical, anything else is rejected. It backs the node layer's
// Transport interface.
func (s *Switchboard) Resolve(addr string) (string, error) {
	if !strings.HasPrefix(addr, addrPrefix) || len(addr) == len(addrPrefix) {
		return "", fmt.Errorf("memnet: bad address %q", addr)
	}
	return addr, nil
}

// Stats snapshots the medium's counters.
func (s *Switchboard) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Position returns the last position snooped from addr's beacons.
func (s *Switchboard) Position(addr string) (geo.Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pos[addr]
	return p, ok
}

// SetPosition pre-seeds an endpoint's position, so a fleet wired statically
// (no HELLO beacons to snoop) still gets the medium's Range partition from
// the first datagram. Later beacons or self-describing ad frames from the
// endpoint overwrite it, exactly as for snooped positions.
func (s *Switchboard) SetPosition(addr string, p geo.Point) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pos[addr] = p
}

// Endpoints returns the number of currently bound endpoints.
func (s *Switchboard) Endpoints() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.eps)
}

// packet is one in-flight datagram.
type packet struct {
	data []byte
	from string
}

// Conn is one endpoint's socket. It implements the node layer's PacketConn
// interface structurally.
type Conn struct {
	sb   *Switchboard
	addr string
	ch   chan packet
	done chan struct{}
	once sync.Once
}

// LocalAddr returns the endpoint's bound address.
func (c *Conn) LocalAddr() string { return c.addr }

// ReadFrom blocks until a datagram arrives or the conn closes, mirroring a
// UDP socket: a datagram longer than b is truncated.
func (c *Conn) ReadFrom(b []byte) (int, string, error) {
	select {
	case p := <-c.ch:
		return copy(b, p.data), p.from, nil
	case <-c.done:
		return 0, "", net.ErrClosed
	}
}

// WriteTo routes one datagram through the switchboard. Like UDP, a send to
// nobody succeeds silently; only local faults (closed conn, oversized
// payload, unroutable address) error.
func (c *Conn) WriteTo(b []byte, to string) (int, error) {
	select {
	case <-c.done:
		return 0, net.ErrClosed
	default:
	}
	if len(b) > maxPayload {
		return 0, fmt.Errorf("memnet: message of %d bytes too long", len(b))
	}
	if !strings.HasPrefix(to, addrPrefix) {
		return 0, fmt.Errorf("memnet: bad destination %q", to)
	}
	s := c.sb
	s.mu.Lock()
	// The medium learns geometry by listening to the traffic it carries:
	// every beacon — and every self-describing ad-layer frame (envelope,
	// batch, digest, pull) — stamps its sender's endpoint with the claimed
	// position.
	if len(b) > 0 && b[0] == discovery.BeaconMagic {
		if bc, err := discovery.DecodeBeacon(b); err == nil {
			s.pos[c.addr] = bc.Pos
		}
	} else if p, ok := wire.SenderPos(b); ok {
		s.pos[c.addr] = p
	}
	if s.cfg.Loss > 0 && s.rnd.Bool(s.cfg.Loss) {
		s.stats.Lost++
		s.mu.Unlock()
		return len(b), nil
	}
	if s.cfg.Range > 0 {
		sp, sok := s.pos[c.addr]
		dp, dok := s.pos[to]
		if sok && dok && sp.Dist(dp) > s.cfg.Range {
			s.stats.OutOfRange++
			s.mu.Unlock()
			return len(b), nil
		}
	}
	dst, ok := s.eps[to]
	if !ok {
		s.stats.NoEndpoint++
		s.mu.Unlock()
		return len(b), nil
	}
	s.mu.Unlock()

	p := packet{data: append([]byte(nil), b...), from: c.addr}
	if c.sb.cfg.Latency > 0 {
		time.AfterFunc(c.sb.cfg.Latency, func() { c.sb.deliver(to, dst, p) })
		return len(b), nil
	}
	c.sb.deliver(to, dst, p)
	return len(b), nil
}

// deliver enqueues the packet unless the destination has since closed or its
// buffer is full.
func (s *Switchboard) deliver(to string, dst *Conn, p packet) {
	s.mu.Lock()
	if s.eps[to] != dst { // closed (or closed and rebound) since routing
		s.stats.NoEndpoint++
		s.mu.Unlock()
		return
	}
	select {
	case dst.ch <- p:
		s.stats.Delivered++
		s.stats.DeliveredBytes += uint64(len(p.data))
		if uint64(len(p.data)) > s.stats.MaxDatagram {
			s.stats.MaxDatagram = uint64(len(p.data))
		}
	default:
		s.stats.QueueOverflow++
	}
	s.mu.Unlock()
}

// Close unbinds the endpoint; blocked and future reads return net.ErrClosed,
// and in-flight datagrams toward it are dropped like packets to a dead port.
func (c *Conn) Close() error {
	c.once.Do(func() {
		s := c.sb
		s.mu.Lock()
		if s.eps[c.addr] == c {
			delete(s.eps, c.addr)
			delete(s.pos, c.addr)
		}
		s.mu.Unlock()
		close(c.done)
	})
	return nil
}
