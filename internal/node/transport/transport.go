// Package transport defines the datagram abstraction the live node runs
// on. Addresses are opaque strings owned by the Transport that produced the
// conn, so the same node code runs over real UDP sockets (UDP here) and
// over the in-memory test network (internal/node/memnet) unchanged. The
// package sits below both so neither has to import the other.
package transport

import (
	"fmt"
	"net"
	"sync"
)

// PacketConn is the datagram socket a node runs on.
type PacketConn interface {
	// ReadFrom blocks for the next datagram, reporting the source address.
	// A closed conn returns an error satisfying errors.Is(err, net.ErrClosed).
	ReadFrom(b []byte) (n int, from string, err error)
	// WriteTo sends one datagram toward the address.
	WriteTo(b []byte, to string) (int, error)
	Close() error
	// LocalAddr returns the bound address in the transport's canonical form.
	LocalAddr() string
}

// Transport binds sockets and canonicalizes addresses. The canonical form
// from Resolve is the peer-identity key: two spellings of one destination
// ("localhost:7001" and "127.0.0.1:7001") must resolve equal.
type Transport interface {
	Listen(addr string) (PacketConn, error)
	Resolve(addr string) (string, error)
}

// UDP is the default Transport: real UDP sockets.
type UDP struct{}

// Listen binds a UDP socket on addr.
func (UDP) Listen(addr string) (PacketConn, error) {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	return &udpPacketConn{conn: conn, dests: make(map[string]*net.UDPAddr)}, nil
}

// Resolve canonicalizes addr via DNS/literal resolution.
func (UDP) Resolve(addr string) (string, error) {
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return "", err
	}
	return a.String(), nil
}

// udpPacketConn adapts *net.UDPConn to string addresses. Destinations are
// resolved once and cached: the node's peer set is small and stable, so the
// hot send path costs one map hit, not a resolver call.
type udpPacketConn struct {
	conn *net.UDPConn

	mu    sync.Mutex
	dests map[string]*net.UDPAddr
}

func (c *udpPacketConn) ReadFrom(b []byte) (int, string, error) {
	n, addr, err := c.conn.ReadFromUDP(b)
	if err != nil {
		return n, "", err
	}
	return n, addr.String(), nil
}

func (c *udpPacketConn) WriteTo(b []byte, to string) (int, error) {
	c.mu.Lock()
	addr := c.dests[to]
	c.mu.Unlock()
	if addr == nil {
		var err error
		addr, err = net.ResolveUDPAddr("udp", to)
		if err != nil {
			return 0, fmt.Errorf("transport: destination %q: %w", to, err)
		}
		c.mu.Lock()
		c.dests[to] = addr
		c.mu.Unlock()
	}
	return c.conn.WriteToUDP(b, addr)
}

func (c *udpPacketConn) Close() error { return c.conn.Close() }

func (c *udpPacketConn) LocalAddr() string { return c.conn.LocalAddr().String() }
