package node

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// proxyRig is a client socket → FaultProxy → receiver socket chain.
type proxyRig struct {
	client   *net.UDPConn
	proxy    *FaultProxy
	receiver *net.UDPConn
}

func newProxyRig(t *testing.T, cfg FaultConfig) *proxyRig {
	t.Helper()
	recv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := NewFaultProxy(recv.LocalAddr().String(), cfg)
	if err != nil {
		recv.Close()
		t.Fatal(err)
	}
	client, err := netDial(proxy.Addr())
	if err != nil {
		recv.Close()
		proxy.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		_ = proxy.Close()
		recv.Close()
	})
	return &proxyRig{client: client, proxy: proxy, receiver: recv}
}

// recvAll drains the receiver until it stays quiet for the given window.
func (r *proxyRig) recvAll(t *testing.T, quiet time.Duration) [][]byte {
	t.Helper()
	var out [][]byte
	buf := make([]byte, maxDatagram)
	for {
		_ = r.receiver.SetReadDeadline(time.Now().Add(quiet))
		n, _, err := r.receiver.ReadFromUDP(buf)
		if err != nil {
			return out
		}
		out = append(out, append([]byte(nil), buf[:n]...))
	}
}

func TestFaultProxyCleanForward(t *testing.T) {
	rig := newProxyRig(t, FaultConfig{Seed: 1})
	payload := []byte("hello through the proxy")
	for i := 0; i < 3; i++ {
		if _, err := rig.client.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	got := rig.recvAll(t, 300*time.Millisecond)
	if len(got) != 3 {
		t.Fatalf("received %d datagrams, want 3", len(got))
	}
	for _, g := range got {
		if !bytes.Equal(g, payload) {
			t.Errorf("payload corrupted: %q", g)
		}
	}
	st := rig.proxy.Stats()
	if st.Received != 3 || st.Forwarded != 3 || st.Dropped != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestFaultProxyDropAll(t *testing.T) {
	rig := newProxyRig(t, FaultConfig{Drop: 1, Seed: 2})
	for i := 0; i < 5; i++ {
		if _, err := rig.client.Write([]byte("doomed")); err != nil {
			t.Fatal(err)
		}
	}
	if got := rig.recvAll(t, 200*time.Millisecond); len(got) != 0 {
		t.Fatalf("received %d datagrams through a 100%% lossy link", len(got))
	}
	if st := rig.proxy.Stats(); st.Dropped != 5 || st.Forwarded != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestFaultProxyTruncateAndDuplicate(t *testing.T) {
	rig := newProxyRig(t, FaultConfig{Truncate: 1, Duplicate: 1, Seed: 3})
	payload := []byte("a reasonably long datagram payload")
	if _, err := rig.client.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := rig.recvAll(t, 300*time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("received %d datagrams, want duplicated pair", len(got))
	}
	for _, g := range got {
		if len(g) >= len(payload) {
			t.Errorf("datagram not truncated: %d bytes", len(g))
		}
		if !bytes.Equal(g, payload[:len(g)]) {
			t.Errorf("truncation is not a prefix: %q", g)
		}
	}
	if st := rig.proxy.Stats(); st.Truncated != 1 || st.Duplicated != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestFaultProxyGarbageInjection(t *testing.T) {
	rig := newProxyRig(t, FaultConfig{Garbage: 1, Drop: 1, Seed: 4})
	for i := 0; i < 4; i++ {
		if _, err := rig.client.Write([]byte("real traffic, all dropped")); err != nil {
			t.Fatal(err)
		}
	}
	got := rig.recvAll(t, 300*time.Millisecond)
	if len(got) != 4 {
		t.Fatalf("received %d junk datagrams, want 4", len(got))
	}
	if st := rig.proxy.Stats(); st.Garbage != 4 || st.Forwarded != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestFaultProxyReorderDelays(t *testing.T) {
	const delay = 80 * time.Millisecond
	rig := newProxyRig(t, FaultConfig{Reorder: 1, ReorderDelay: delay, Seed: 5})
	start := time.Now()
	if _, err := rig.client.Write([]byte("late")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	_ = rig.receiver.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := rig.receiver.ReadFromUDP(buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < delay/2 {
		t.Errorf("reordered datagram arrived after only %v", elapsed)
	}
	if st := rig.proxy.Stats(); st.Reordered != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestFaultProxyValidation(t *testing.T) {
	if _, err := NewFaultProxy("127.0.0.1:1", FaultConfig{Drop: 1.5}); err == nil {
		t.Error("out-of-range probability accepted")
	}
	if _, err := NewFaultProxy("127.0.0.1:1", FaultConfig{ReorderDelay: -time.Second}); err == nil {
		t.Error("negative reorder delay accepted")
	}
	if _, err := NewFaultProxy("not::an::addr", FaultConfig{}); err == nil {
		t.Error("bad destination accepted")
	}
}

func TestFaultProxyCloseIdempotent(t *testing.T) {
	rig := newProxyRig(t, FaultConfig{Seed: 6})
	if err := rig.proxy.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rig.proxy.Close(); err != nil {
		t.Errorf("second close errored: %v", err)
	}
}
