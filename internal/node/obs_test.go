package node

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"instantad/internal/core"
	"instantad/internal/geo"
	"instantad/internal/obs"
)

// TestStatsRegistryEquivalence is the back-compat check for the registry
// refactor: on a four-node soak-shaped cluster, every Stats field must read
// back exactly the registry instrument that now backs it.
func TestStatsRegistryEquivalence(t *testing.T) {
	nodes := cluster(t, []geo.Point{
		{X: 0}, {X: 200}, {X: 400}, {X: 600},
	}, func(i int, c *Config) {
		c.CacheK = 16
	})
	for k := 0; k < 5; k++ {
		if _, err := nodes[0].Issue(core.AdSpec{R: 1500, D: 2, Category: "petrol", Text: "equiv"}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(30 * time.Millisecond)
	}
	waitFor(t, 3*time.Second, func() bool {
		return nodes[3].Stats().Received > 0
	})
	// Freeze the counters before comparing: a live node may count between
	// the two reads.
	for _, n := range nodes {
		_ = n.Close()
	}
	for i, n := range nodes {
		st := n.Stats()
		snap := n.Registry().Snapshot()
		want := map[string]uint64{
			"node_sent_total":              st.Sent,
			"node_broadcasts_total":        st.Broadcasts,
			"node_received_total":          st.Received,
			"node_out_of_range_total":      st.OutOfRange,
			"node_malformed_total":         st.Malformed,
			"node_duplicates_total":        st.Duplicates,
			"node_expired_total":           st.Expired,
			"node_read_errors_total":       st.ReadErrors,
			"node_send_errors_total":       st.SendErrors,
			"node_seen_pruned_total":       st.SeenPruned,
			"node_peer_backoffs_total":     st.PeerBackoffs,
			"node_beacons_sent_total":      st.BeaconsSent,
			"node_beacons_recv_total":      st.BeaconsRecv,
			"node_beacon_relays_total":     st.BeaconRelays,
			"node_neighbors_expired_total": st.NeighborsExpired,
			"node_epoch_skew_total":        st.EpochSkew,
		}
		for name, v := range want {
			if got, ok := snap.Counters[name]; !ok || got != v {
				t.Errorf("node %d: %s = %d, Stats says %d", i, name, got, v)
			}
		}
		if g := snap.Gauges["node_seen_live"]; uint64(g) != st.SeenLive {
			t.Errorf("node %d: node_seen_live = %v, Stats says %d", i, g, st.SeenLive)
		}
		if g := snap.Gauges["node_peers_live"]; uint64(g) != st.PeersLive {
			t.Errorf("node %d: node_peers_live = %v, Stats says %d", i, g, st.PeersLive)
		}
		if st.Received > 0 {
			hs, ok := snap.Histograms["node_receive_latency_seconds"]
			if !ok || hs.Count == 0 {
				t.Errorf("node %d received %d envelopes but the latency histogram is empty", i, st.Received)
			}
		}
	}
	if nodes[3].Stats().Received == 0 {
		t.Error("far node never received; equivalence only checked zeros")
	}
}

// TestMetricsExpositionParses is the /metrics acceptance test at the layer
// boundary: a discovery-enabled node's registry must expose valid Prometheus
// text including a counter, a gauge and a histogram from both the node and
// discovery layers.
func TestMetricsExpositionParses(t *testing.T) {
	nodes := cluster(t, []geo.Point{{X: 0}, {X: 100}}, func(i int, c *Config) {
		c.BeaconInterval = 20 * time.Millisecond
	})
	waitFor(t, 3*time.Second, func() bool {
		return nodes[0].NeighborCount() > 0 && nodes[0].Stats().BeaconsRecv > 1
	})
	if _, err := nodes[0].Issue(core.AdSpec{R: 500, D: 5, Category: "petrol", Text: "expo"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return nodes[1].Stats().Received > 0 })

	var buf bytes.Buffer
	if err := nodes[0].Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParsePrometheus(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("/metrics body does not parse: %v\n%s", err, buf.String())
	}
	required := map[string]string{
		// node layer: counter, gauge, histogram
		"node_sent_total":              "counter",
		"node_peers_live":              "gauge",
		"node_send_latency_seconds":    "histogram",
		"node_receive_latency_seconds": "histogram",
		// discovery layer: counter, gauge, histogram
		"discovery_neighbors_new_total":         "counter",
		"discovery_neighbors":                   "gauge",
		"discovery_beacon_interarrival_seconds": "histogram",
		"discovery_beacons_refreshed_total":     "counter",
	}
	for name, typ := range required {
		f, ok := fams[name]
		if !ok {
			t.Errorf("family %s missing from /metrics", name)
			continue
		}
		if f.Type != typ {
			t.Errorf("family %s has type %s, want %s", name, f.Type, typ)
		}
	}
	if fams["discovery_neighbors_new_total"].Samples["discovery_neighbors_new_total"] < 1 {
		t.Error("no new neighbors counted despite discovery running")
	}
	if fams["discovery_beacon_interarrival_seconds"].Samples["discovery_beacon_interarrival_seconds_count"] < 1 {
		t.Error("beacon interarrival histogram empty despite refreshes")
	}
}

// TestNodeEventTrace asserts the lifecycle trace captures membership,
// discovery and backoff transitions as well-formed JSONL.
func TestNodeEventTrace(t *testing.T) {
	var sink bytes.Buffer
	rec := NewEventRecorder(&sink)
	cfg := testConfig(1, geo.Point{})
	cfg.Events = rec
	cfg.PeerFailLimit = 1
	cfg.PeerBackoffBase = 10 * time.Millisecond
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.AddPeer("127.0.0.1:9"); err != nil { // discard port: sends may fail
		t.Fatal(err)
	}
	if !n.RemovePeer("127.0.0.1:9") {
		t.Fatal("peer not removed")
	}
	_ = n.Close()
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]int)
	for _, ev := range events {
		if ev.T == 0 {
			t.Errorf("event %+v without a timestamp", ev)
		}
		kinds[ev.Kind]++
	}
	if kinds["peer_add"] != 1 || kinds["peer_remove"] != 1 {
		t.Errorf("membership events = %v, want one peer_add and one peer_remove", kinds)
	}
}

// TestEventRecorderStickyError mirrors the trace.Recorder short-write fix:
// a failing underlying writer must surface through Flush and Err, and stop
// the recorder.
func TestEventRecorderStickyError(t *testing.T) {
	w := &failingWriter{failAfter: 1}
	rec := NewEventRecorder(w)
	for i := 0; i < 2000; i++ { // enough to overflow the 4KiB bufio buffer
		rec.Record(NodeEvent{Kind: "peer_add", Peer: "x"})
	}
	if err := rec.Flush(); err == nil {
		t.Fatal("Flush did not surface the write error")
	}
	if rec.Err() == nil {
		t.Fatal("Err lost the sticky error")
	}
	before := rec.Len()
	rec.Record(NodeEvent{Kind: "peer_add"})
	if rec.Len() != before {
		t.Error("recorder kept accepting events after the error")
	}
}

// failingWriter accepts failAfter writes, then errors forever.
type failingWriter struct {
	failAfter int
	writes    int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.failAfter {
		return 0, errTestSink
	}
	return len(p), nil
}

var errTestSink = errors.New("sink failed")
