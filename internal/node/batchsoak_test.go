package node

import (
	"fmt"
	"testing"
	"time"

	"instantad/internal/ads"
	"instantad/internal/core"
	"instantad/internal/geo"
	"instantad/internal/node/memnet"
)

// The 10× soak: the PR-2 fault soak gossips 40 ads; this one pushes 400
// through a lossy five-node memnet mesh, once with the batched wire layer
// (digests on) and once with the legacy one-envelope-per-ad format, and
// compares the medium's datagram bill per delivered ad. It is both the
// acceptance test (≥2× fewer datagrams batched, digest hits non-zero, no
// frame past the soft cap) and — as BenchmarkMemnetSoak — the source of
// BENCH_node.json.
const (
	soakNodes      = 5
	soakAdsPerNode = 80 // × 5 nodes = 400 ads, 10× the PR-2 soak's 40
	soakAdD        = 3600.0
	soakRound      = 30 * time.Millisecond
	soakLoss       = 0.25
	soakCacheK     = 512
)

// soakResult is one soak run's ledger.
type soakResult struct {
	converged     bool
	elapsed       time.Duration
	datagrams     uint64  // medium deliveries (ads + digests + pulls)
	bytes         uint64  // payload bytes the medium carried
	maxDatagram   uint64  // largest single datagram
	deliveries    int     // ad deliveries required: ads × (nodes-1)
	digestsSent   uint64  // across all nodes
	digestHits    uint64  // across all nodes
	pulledAds     uint64  // across all nodes
	batchesSent   uint64  // across all nodes
	avgBatchAds   float64 // mean ads per sent batch frame (histogram)
	avgBatchBytes float64 // mean bytes per sent batch frame (histogram)
}

func (r soakResult) datagramsPerAd() float64 {
	if r.deliveries == 0 {
		return 0
	}
	return float64(r.datagrams) / float64(r.deliveries)
}

func (r soakResult) bytesPerAd() float64 {
	if r.deliveries == 0 {
		return 0
	}
	return float64(r.bytes) / float64(r.deliveries)
}

func (r soakResult) digestHitRate() float64 {
	if r.digestsSent == 0 {
		return 0
	}
	return float64(r.digestHits) / float64(r.digestsSent)
}

// runMemnetSoak gossips the 10× ad load across a lossy full mesh until every
// node has heard every ad, then (batched mode) a settle period so digest
// rounds demonstrate the anti-entropy steady state.
func runMemnetSoak(tb testing.TB, batched bool, timeout time.Duration) soakResult {
	tb.Helper()
	sb, err := memnet.New(memnet.Config{Loss: soakLoss, Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	epoch := time.Now()
	nodes := make([]*Node, soakNodes)
	for i := range nodes {
		cfg := testConfig(uint32(i), geo.Point{X: float64(i) * 10})
		cfg.ListenAddr = "mem:"
		cfg.Transport = sb.Transport()
		cfg.RoundTime = soakRound
		cfg.CacheK = soakCacheK
		if batched {
			cfg.BatchSoftCap = 0 // MTU-aware default
			cfg.DigestEvery = 2
		} else {
			cfg.BatchSoftCap = -1 // legacy envelope per ad: the baseline
		}
		n, err := New(cfg)
		if err != nil {
			tb.Fatal(err)
		}
		n.SetEpoch(epoch)
		nodes[i] = n
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	for i, a := range nodes {
		for j, b := range nodes {
			if i != j {
				if err := a.AddPeer(b.Addr()); err != nil {
					tb.Fatal(err)
				}
			}
		}
	}
	for _, n := range nodes {
		n.Start()
	}
	start := time.Now()
	issued := make([]ads.ID, 0, soakNodes*soakAdsPerNode)
	for _, n := range nodes {
		for k := 0; k < soakAdsPerNode; k++ {
			ad, err := n.Issue(core.AdSpec{R: 1500, D: soakAdD, Category: "petrol", Text: "soak load"})
			if err != nil {
				tb.Fatal(err)
			}
			issued = append(issued, ad.ID)
		}
	}
	converged := func() bool {
		for _, n := range nodes {
			for _, id := range issued {
				if !n.Has(id) {
					return false
				}
			}
		}
		return true
	}
	deadline := time.Now().Add(timeout)
	ok := false
	for time.Now().Before(deadline) {
		if converged() {
			ok = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The datagram bill is judged at convergence: how much did the medium
	// carry to get every ad everywhere.
	st := sb.Stats()
	if batched && ok {
		// Settle: with every cache converged, further digest rounds must be
		// hits — the steady state where neighbors trade IDs, not payloads.
		time.Sleep(10 * soakRound)
	}
	res := soakResult{
		converged:  ok,
		elapsed:    time.Since(start),
		deliveries: len(issued) * (soakNodes - 1),
	}
	for _, n := range nodes {
		_ = n.Close()
	}
	res.datagrams = st.Delivered
	res.bytes = st.DeliveredBytes
	res.maxDatagram = sb.Stats().MaxDatagram // including the settle traffic
	for _, n := range nodes {
		s := n.Stats()
		res.digestsSent += s.DigestsSent
		res.digestHits += s.DigestHits
		res.pulledAds += s.PulledAds
		res.batchesSent += s.BatchesSent
		if c := n.batchAds.Count(); c > 0 {
			res.avgBatchAds += n.batchAds.Sum() / float64(c) / float64(soakNodes)
			res.avgBatchBytes += n.batchBytes.Sum() / float64(n.batchBytes.Count()) / float64(soakNodes)
		}
	}
	return res
}

// TestMemnetSoak10x is the wire-layer acceptance soak (run under -race in
// CI): the batched stack must converge the 10× load with at least half the
// datagrams per delivered ad of the unbatched baseline, produce digest hits,
// keep multi-ad frames under the soft cap, and pack non-trivially.
func TestMemnetSoak10x(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second 10× memnet soak")
	}
	batched := runMemnetSoak(t, true, 60*time.Second)
	if !batched.converged {
		t.Fatalf("batched run never converged: %+v", batched)
	}
	unbatched := runMemnetSoak(t, false, 60*time.Second)
	if !unbatched.converged {
		t.Fatalf("unbatched run never converged: %+v", unbatched)
	}
	t.Logf("batched:   %.2f datagrams/ad, %.0f bytes/ad, %d batches, avg %.1f ads/batch, hit rate %.2f, %v",
		batched.datagramsPerAd(), batched.bytesPerAd(), batched.batchesSent,
		batched.avgBatchAds, batched.digestHitRate(), batched.elapsed)
	t.Logf("unbatched: %.2f datagrams/ad, %.0f bytes/ad, %v",
		unbatched.datagramsPerAd(), unbatched.bytesPerAd(), unbatched.elapsed)
	if 2*batched.datagramsPerAd() > unbatched.datagramsPerAd() {
		t.Errorf("batched wire layer spent %.2f datagrams per delivered ad, want ≤ half of the unbatched %.2f",
			batched.datagramsPerAd(), unbatched.datagramsPerAd())
	}
	if batched.digestHits == 0 {
		t.Error("no digest hits: anti-entropy never reached steady state")
	}
	if batched.maxDatagram > defaultBatchSoftCap {
		t.Errorf("a %d-byte frame crossed the medium, above the %d soft cap",
			batched.maxDatagram, defaultBatchSoftCap)
	}
	if batched.avgBatchAds < 2 {
		t.Errorf("average batch carried %.2f ads: packing is trivial", batched.avgBatchAds)
	}
	// Pulls only fire when a digest beats gossip to a gap, which is timing-
	// dependent here; the deterministic digest→pull exchange is pinned by
	// TestDigestPullServesMissingAds instead.
	t.Logf("pulled ads: %d", batched.pulledAds)
}

// BenchmarkMemnetSoak is the same scenario as TestMemnetSoak10x exposed to
// scripts/bench.sh: each mode reports the medium's datagram and byte bill
// per delivered ad plus the digest hit rate, which bench.sh rolls into the
// ncpu-stamped BENCH_node.json.
func BenchmarkMemnetSoak(b *testing.B) {
	for _, mode := range []string{"batched", "unbatched"} {
		b.Run(fmt.Sprintf("mode=%s", mode), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runMemnetSoak(b, mode == "batched", 60*time.Second)
				if !res.converged {
					b.Fatalf("%s run never converged", mode)
				}
				b.ReportMetric(res.datagramsPerAd(), "datagrams/ad")
				b.ReportMetric(res.bytesPerAd(), "bytes/ad")
				b.ReportMetric(res.digestHitRate(), "hitrate")
				b.ReportMetric(res.avgBatchAds, "ads/batch")
			}
		})
	}
}
