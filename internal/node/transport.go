package node

import "instantad/internal/node/transport"

// PacketConn and Transport are re-exported from internal/node/transport,
// the leaf package both the node and the in-memory test network build on.
type (
	PacketConn = transport.PacketConn
	Transport  = transport.Transport
)

// UDPTransport is the default Transport: real UDP sockets.
type UDPTransport = transport.UDP
