package node

import (
	"sync"
	"testing"
	"time"

	"instantad/internal/ads"
	"instantad/internal/core"
	"instantad/internal/geo"
	"instantad/internal/node/memnet"
)

// TestConfigValidationWireLayer extends the validation matrix to the
// batching and anti-entropy knobs.
func TestConfigValidationWireLayer(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.BatchSoftCap = minBatchSoftCap - 1 },
		func(c *Config) { c.BatchSoftCap = maxPayload + 1 },
		func(c *Config) { c.DigestEvery = -1 },
		func(c *Config) { c.BlockWindow = -time.Second },
		func(c *Config) { c.RoundBytes = -1 },
	}
	for i, mutate := range mutations {
		cfg := testConfig(0, geo.Point{})
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	// A negative soft cap is not an error: it disables batching.
	cfg := testConfig(0, geo.Point{})
	cfg.BatchSoftCap = -1
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.batchCap != 0 {
		t.Errorf("negative soft cap resolved to %d, want 0 (disabled)", n.batchCap)
	}
}

// TestHasChecksStoredExpiry is the regression for the expiry off-by-one:
// Has must consult the stored expiry against the protocol clock, not merely
// map membership — an expired ad reports false even before any sweep runs.
func TestHasChecksStoredExpiry(t *testing.T) {
	n, err := New(testConfig(1, geo.Point{}))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close() // never started: no sweep can save the buggy path
	ad, err := n.Issue(core.AdSpec{R: 500, D: 1, Category: "petrol"})
	if err != nil {
		t.Fatal(err)
	}
	if !n.Has(ad.ID) {
		t.Fatal("fresh ad not reported live")
	}
	// Shift the protocol clock past the ad's expiry. The ID is still in the
	// seen map (no sweep ran), so only an expiry check can report false.
	n.SetEpoch(time.Now().Add(-2 * time.Second))
	if n.Has(ad.ID) {
		t.Error("expired ad still reported live")
	}
	if n.SeenSize() != 1 {
		t.Fatalf("seen set is %d entries, want 1 (no sweep should have run)", n.SeenSize())
	}
}

// TestPruneSweepsAtExpiry is the companion regression for the sweep side:
// the first sweep after an ID's expiry must remove it, not grant it a full
// extra round of grace.
func TestPruneSweepsAtExpiry(t *testing.T) {
	n, err := New(testConfig(1, geo.Point{})) // RoundTime 40ms
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	id := ads.ID{Issuer: 9, Seq: 1}
	n.mu.Lock()
	n.seen[id] = 1.0 // expires at protocol t = 1s
	// t = 1.02s: past expiry but within one 40ms round of it — the old
	// exp+round < now condition would have kept the ID here.
	n.pruneSeenLocked(1.02)
	_, ok := n.seen[id]
	n.mu.Unlock()
	if ok {
		t.Error("expired ID survived the first sweep past its expiry")
	}
	if n.ctr.seenPruned.Value() != 1 {
		t.Errorf("seenPruned = %d, want 1", n.ctr.seenPruned.Value())
	}
}

// TestDetachedPeerHealthFrozen pins the removed-peer contract: a peerState
// detached by RemovePeer must not accumulate health, trip backoff, or emit
// events from sends that still hold a pre-removal snapshot.
func TestDetachedPeerHealthFrozen(t *testing.T) {
	n, err := New(testConfig(1, geo.Point{}))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.AddPeer("127.0.0.1:9"); err != nil {
		t.Fatal(err)
	}
	n.mu.Lock()
	p := n.peers[0]
	n.mu.Unlock()
	if !n.RemovePeer("127.0.0.1:9") {
		t.Fatal("peer not removed")
	}
	if !p.detached {
		t.Fatal("removed peer not marked detached")
	}
	// A send through the stale snapshot must refuse and leave health alone.
	if n.sendTo([]byte{0x00}, p) {
		t.Error("send to a detached peer reported success")
	}
	for i := 0; i < 2*defaultPeerFailLimit; i++ {
		n.peerSendFailed(p, errClosed())
		n.peerSendOK(p)
	}
	if p.sent != 0 || p.failures != 0 || p.consecFails != 0 || p.inBackoff {
		t.Errorf("detached peer health mutated: %+v", p)
	}
	if n.ctr.peerBackoffs.Value() != 0 {
		t.Error("detached peer tripped backoff")
	}
}

func errClosed() error { return &timeoutErr{} }

type timeoutErr struct{}

func (*timeoutErr) Error() string { return "synthetic send failure" }

// TestRemovePeerDuringBroadcastRace churns peer membership while the node
// broadcasts — under -race this proves sends and removal cannot mutate a
// peerState unsynchronized (the bug this PR's detached flag fixes).
func TestRemovePeerDuringBroadcastRace(t *testing.T) {
	n, err := New(testConfig(1, geo.Point{}))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	ad := &ads.Advertisement{
		ID: ads.ID{Issuer: 1, Seq: 0}, Origin: geo.Point{},
		IssuedAt: 0, R: 500, D: 1e6, Category: "petrol",
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = n.AddPeer("127.0.0.1:9")
			n.RemovePeer("127.0.0.1:9")
		}
	}()
	for i := 0; i < 300; i++ {
		n.broadcast(ad)
		n.gossipOut([]*ads.Advertisement{ad.Clone()})
	}
	close(done)
	wg.Wait()
}

// TestBatchedGossipDelivery checks the tentpole end to end over real UDP:
// with batching at its default soft cap, a multi-ad cache converges across
// nodes and the round gossip actually travels as multi-ad batch frames.
func TestBatchedGossipDelivery(t *testing.T) {
	nodes := cluster(t, []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}}, nil)
	var issued []ads.ID
	for i := 0; i < 6; i++ {
		ad, err := nodes[0].Issue(core.AdSpec{R: 800, D: 30, Category: "petrol", Text: "batched"})
		if err != nil {
			t.Fatal(err)
		}
		issued = append(issued, ad.ID)
	}
	// Convergence alone can ride Issue's immediate legacy envelopes; wait
	// until the round gossip has demonstrably travelled as batch frames too.
	if !waitFor(t, 3*time.Second, func() bool {
		for _, n := range nodes[1:] {
			for _, id := range issued {
				if !n.Has(id) {
					return false
				}
			}
		}
		return nodes[0].Stats().BatchesSent > 0 && nodes[1].Stats().BatchesRecv > 0
	}) {
		t.Fatalf("no batched convergence; stats: %+v / %+v", nodes[0].Stats(), nodes[1].Stats())
	}
}

// memnetPair builds two unstarted in-range nodes on a private switchboard,
// with digests enabled, so a test can drive the digest → pull → serve
// exchange by hand, frame by frame.
func memnetPair(t *testing.T) (a, b *Node) {
	t.Helper()
	sb, err := memnet.New(memnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	epoch := time.Now()
	mk := func(id uint32) *Node {
		cfg := testConfig(id, geo.Point{X: float64(id)})
		cfg.ListenAddr = "mem:"
		cfg.Transport = sb.Transport()
		cfg.DigestEvery = 1
		cfg.RoundTime = time.Second // block window = 4s: outlasts the test
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.SetEpoch(epoch)
		t.Cleanup(func() { _ = n.Close() })
		return n
	}
	a, b = mk(1), mk(2)
	return a, b
}

// peerUp meshes the pair after any setup issuing, so Issue's immediate
// broadcast cannot leak frames into the other node's queue.
func peerUp(t *testing.T, a, b *Node) {
	t.Helper()
	if err := a.AddPeer(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(a.Addr()); err != nil {
		t.Fatal(err)
	}
}

// readFrame pops one datagram from an unstarted node's socket.
func readFrame(t *testing.T, n *Node) ([]byte, string) {
	t.Helper()
	buf := make([]byte, maxDatagram)
	nb, from, err := n.conn.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), buf[:nb]...), from
}

// TestDigestPullServesMissingAds drives the anti-entropy exchange
// deterministically: B holds ads A has never heard; one digest from B makes
// A pull exactly the missing IDs, B serves them as batch frames, and A
// integrates them. A second digest is then a hit, and B's serve block
// window suppresses immediate re-serving.
func TestDigestPullServesMissingAds(t *testing.T) {
	a, b := memnetPair(t)
	var ids []ads.ID
	for i := 0; i < 3; i++ {
		ad, err := b.Issue(core.AdSpec{R: 500, D: 3600, Category: "petrol", Text: "pullable"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, ad.ID)
	}
	peerUp(t, a, b) // after issuing: A must have heard nothing
	// Round 1: B digests its cache to A (memnet delivers synchronously).
	b.sendDigest(ids)
	if got := b.Stats().DigestsSent; got != 1 {
		t.Fatalf("DigestsSent = %d, want 1", got)
	}
	frame, from := readFrame(t, a)
	if frame[0] != digestMagic {
		t.Fatalf("A heard 0x%02X, want a digest", frame[0])
	}
	a.handleDigest(frame, from)
	if got := a.Stats().PullsSent; got != 1 {
		t.Fatalf("PullsSent = %d, want 1", got)
	}
	// B serves the pull as batch frames.
	frame, from = readFrame(t, b)
	if frame[0] != pullMagic {
		t.Fatalf("B heard 0x%02X, want a pull", frame[0])
	}
	b.handlePull(frame, from)
	bst := b.Stats()
	if bst.PullsRecv != 1 || bst.PulledAds != 3 {
		t.Fatalf("PullsRecv/PulledAds = %d/%d, want 1/3", bst.PullsRecv, bst.PulledAds)
	}
	// A integrates the served batches and now has everything.
	for got := 0; got < 3; {
		frame, _ = readFrame(t, a)
		if frame[0] != batchMagic {
			t.Fatalf("A heard 0x%02X, want a batch", frame[0])
		}
		before := a.Stats().Received
		a.handleBatch(frame)
		got += int(a.Stats().Received - before)
	}
	for _, id := range ids {
		if !a.Has(id) {
			t.Fatalf("ad %v not pulled", id)
		}
	}
	// Round 2: the same digest is now a hit — nothing is missing.
	df := &idFrame{Sender: b.cfg.ID, Pos: geo.Point{X: 2}, IDs: ids}
	data, err := df.encode(digestMagic)
	if err != nil {
		t.Fatal(err)
	}
	a.handleDigest(data, b.Addr())
	ast := a.Stats()
	if ast.DigestHits != 1 {
		t.Errorf("DigestHits = %d, want 1", ast.DigestHits)
	}
	if ast.PullsSent != 1 {
		t.Errorf("PullsSent = %d after hit, want still 1", ast.PullsSent)
	}
	// A sits inside B's serve block window now: a repeated pull is refused,
	// and B's own digests skip A.
	pf := &idFrame{Sender: a.cfg.ID, Pos: geo.Point{X: 1}, IDs: ids}
	pull, err := pf.encode(pullMagic)
	if err != nil {
		t.Fatal(err)
	}
	b.handlePull(pull, a.Addr())
	bst = b.Stats()
	if bst.BlockedServes == 0 {
		t.Error("repeated pull inside the block window was served")
	}
	if bst.PulledAds != 3 {
		t.Errorf("PulledAds = %d after blocked pull, want still 3", bst.PulledAds)
	}
	b.sendDigest(ids)
	if got := b.Stats().DigestsSent; got != 1 {
		t.Errorf("DigestsSent = %d, want still 1 (A is inside the block window)", got)
	}
}

// TestRoundByteBudgetDefers pins the rate-control backstop: with a budget
// smaller than one batch frame, gossip sends defer instead of transmitting.
func TestRoundByteBudgetDefers(t *testing.T) {
	sb, err := memnet.New(memnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(1, geo.Point{})
	cfg.ListenAddr = "mem:"
	cfg.Transport = sb.Transport()
	cfg.RoundTime = time.Hour // the budget window must not roll mid-test
	cfg.RoundBytes = 64       // smaller than any batch frame
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	peer, err := sb.Listen("mem:")
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	if err := n.AddPeer(peer.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	ad := &ads.Advertisement{
		ID: ads.ID{Issuer: 1, Seq: 0}, Origin: geo.Point{},
		IssuedAt: 0, R: 500, D: 1e6, Category: "petrol", Text: "too big for 64B",
	}
	n.gossipOut([]*ads.Advertisement{ad})
	st := n.Stats()
	if st.BudgetDeferred == 0 {
		t.Error("no send deferred despite a 64-byte budget")
	}
	if st.BatchesSent != 0 {
		t.Errorf("BatchesSent = %d under an exhausted budget, want 0", st.BatchesSent)
	}
}

// TestFaultProxyTruncatesBatchFrames runs batch traffic through a proxy
// that truncates aggressively: the receiver must count the mangled frames
// malformed and keep integrating the intact ones, never crashing.
func TestFaultProxyTruncatesBatchFrames(t *testing.T) {
	recv, err := New(testConfig(2, geo.Point{X: 50}))
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	recv.Start()
	proxy, err := NewFaultProxy(recv.Addr(), FaultConfig{Truncate: 0.5, Garbage: 0.3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	send, err := New(testConfig(1, geo.Point{}))
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	if err := send.AddPeer(proxy.Addr()); err != nil {
		t.Fatal(err)
	}
	var list []*ads.Advertisement
	for i := 0; i < 8; i++ {
		list = append(list, &ads.Advertisement{
			ID: ads.ID{Issuer: 1, Seq: uint32(i)}, Origin: geo.Point{},
			IssuedAt: 0, R: 500, D: 1e6, Category: "petrol", Text: "truncate me",
		})
	}
	for i := 0; i < 60; i++ {
		send.gossipOut(list)
		time.Sleep(2 * time.Millisecond)
	}
	ok := waitFor(t, 3*time.Second, func() bool {
		st := recv.Stats()
		return st.Malformed > 0 && st.BatchesRecv > 0
	})
	st := recv.Stats()
	if !ok {
		t.Fatalf("want both malformed and intact batches; stats: %+v", st)
	}
	for _, ad := range list {
		if !recv.Has(ad.ID) {
			t.Errorf("ad %v never survived the lossy link", ad.ID)
		}
	}
}
