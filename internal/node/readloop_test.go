package node

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"instantad/internal/ads"
	"instantad/internal/geo"
)

// readResult is one scripted outcome for fakeConn.ReadFrom.
type readResult struct {
	data []byte
	err  error
}

// fakeConn is a scripted PacketConn: reads pop queued results and block when
// the queue is empty; writes always succeed. It lets tests drive the read
// loop through exact error sequences without a real socket.
type fakeConn struct {
	reads  chan readResult
	closed chan struct{}
	once   sync.Once
}

func newFakeConn() *fakeConn {
	return &fakeConn{reads: make(chan readResult, 32), closed: make(chan struct{})}
}

func (c *fakeConn) ReadFrom(b []byte) (int, string, error) {
	select {
	case r := <-c.reads:
		return copy(b, r.data), "127.0.0.1:1", r.err
	case <-c.closed:
		return 0, "", net.ErrClosed
	}
}

func (c *fakeConn) WriteTo(b []byte, to string) (int, error) { return len(b), nil }

func (c *fakeConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

func (c *fakeConn) LocalAddr() string { return "127.0.0.1:1" }

// newFakeNode builds a node whose socket is a fakeConn (the real one is
// closed immediately) with fast read backoff for test speed.
func newFakeNode(t *testing.T, id uint32) (*Node, *fakeConn) {
	t.Helper()
	n, err := New(testConfig(id, geo.Point{}))
	if err != nil {
		t.Fatal(err)
	}
	_ = n.conn.Close()
	fc := newFakeConn()
	n.conn = fc
	n.readBackoffMin = 10 * time.Millisecond
	n.readBackoffMax = 40 * time.Millisecond
	t.Cleanup(func() { _ = n.Close() })
	return n, fc
}

// validDatagram encodes one in-range envelope toward the node.
func validDatagram(t *testing.T, issuer uint32) []byte {
	t.Helper()
	env := &envelope{Sender: issuer, Pos: geo.Point{X: 10}, Ad: &ads.Advertisement{
		ID: ads.ID{Issuer: issuer, Seq: 0}, Origin: geo.Point{X: 10},
		IssuedAt: 0, R: 400, D: 9000, Category: "petrol",
	}}
	data, err := env.encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestReadLoopTransientBackoff scripts a burst of transient read errors
// followed by a valid datagram: the loop must survive the burst, count every
// error, sleep an exponentially growing delay between attempts (no hot
// spin), and then process traffic normally.
func TestReadLoopTransientBackoff(t *testing.T) {
	n, fc := newFakeNode(t, 1)
	transient := errors.New("recvfrom: resource temporarily wedged")
	const bursts = 4
	for i := 0; i < bursts; i++ {
		fc.reads <- readResult{err: transient}
	}
	fc.reads <- readResult{data: validDatagram(t, 42)}
	start := time.Now()
	n.Start()
	if !waitFor(t, 3*time.Second, func() bool { return n.Stats().Received == 1 }) {
		t.Fatalf("valid datagram never processed after error burst; stats %+v", n.Stats())
	}
	// Backoff floors: 10+20+40+40 = 110ms minimum before the valid read.
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("error burst consumed in %v: read loop is not backing off", elapsed)
	}
	if got := n.Stats().ReadErrors; got != bursts {
		t.Errorf("ReadErrors = %d, want %d", got, bursts)
	}
}

// TestReadLoopBackoffResets checks a successful read resets the backoff
// window so an isolated later error starts again from the minimum delay.
func TestReadLoopBackoffResets(t *testing.T) {
	n, fc := newFakeNode(t, 2)
	transient := errors.New("transient")
	fc.reads <- readResult{err: transient}
	fc.reads <- readResult{err: transient}
	fc.reads <- readResult{data: validDatagram(t, 42)}
	n.Start()
	if !waitFor(t, 3*time.Second, func() bool { return n.Stats().Received == 1 }) {
		t.Fatal("first valid datagram never processed")
	}
	// One more error then another valid read: if the backoff had kept
	// doubling it would still be ≤ max (40ms) — mostly this asserts the
	// loop keeps serving traffic interleaved with faults.
	fc.reads <- readResult{err: transient}
	fc.reads <- readResult{data: validDatagram(t, 43)}
	if !waitFor(t, 3*time.Second, func() bool { return n.Stats().Received == 2 }) {
		t.Fatal("valid datagram after second fault never processed")
	}
	if got := n.Stats().ReadErrors; got != 3 {
		t.Errorf("ReadErrors = %d, want 3", got)
	}
}

// TestReadLoopFatalClosed scripts net.ErrClosed: the loop must classify it
// as fatal and exit immediately — not count it, not back off, not retry.
func TestReadLoopFatalClosed(t *testing.T) {
	n, fc := newFakeNode(t, 3)
	n.Start()
	fc.reads <- readResult{err: net.ErrClosed}
	// The loop exited: a queued read result stays unconsumed.
	fc.reads <- readResult{data: validDatagram(t, 42)}
	time.Sleep(150 * time.Millisecond)
	if len(fc.reads) != 1 {
		t.Error("read loop kept reading after a closed-socket error")
	}
	if got := n.Stats().ReadErrors; got != 0 {
		t.Errorf("fatal close counted as transient: ReadErrors = %d", got)
	}
	if n.Stats().Received != 0 {
		t.Error("datagram processed after fatal close")
	}
}
